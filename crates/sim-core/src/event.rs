//! The stable, timed event queue at the heart of the simulator.
//!
//! Two implementations share one contract:
//!
//! * [`EventQueue`] — a calendar queue (Brown's O(1) event list, the
//!   scheduler ns-2 ships as its default), used by the driver loop.
//! * [`HeapQueue`] — the original `BinaryHeap` implementation, kept as the
//!   reference oracle for differential tests and scheduler benchmarks.
//!
//! Both pop events in `(time, seq)` order with FIFO tie-break, so swapping
//! one for the other must never change a simulation's event stream — the
//! scenario-corpus trace hashes pin exactly that.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt::Debug;

use crate::SimTime;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Smallest bucket count the calendar ever shrinks to.
const MIN_BUCKETS: usize = 4;
/// Initial estimate of the gap between consecutive event times (ns).
const INITIAL_GAP: u64 = 1_024;

/// Cached location of the earliest pending entry: `bucket` holds the head
/// with the minimal `(time, seq)` over the whole queue.
#[derive(Clone, Copy, Debug)]
struct Hint {
    time: SimTime,
    bucket: usize,
}

/// A priority queue of `(SimTime, E)` pairs that pops events in time order,
/// breaking ties by insertion order (FIFO).
///
/// The FIFO tie-break is what makes simulations deterministic: two events
/// scheduled for the same instant are always delivered in the order they were
/// scheduled, independent of queue internals.
///
/// # Implementation
///
/// A calendar queue: a power-of-two array of buckets, each a `(time, seq)`-
/// sorted deque, with bucket `(t / width) & mask` owning every event whose
/// time is `t` modulo one "year" (`nbuckets × width`). Pops scan at most one
/// lap from a cursor committed at the previous pop; a lap that finds nothing
/// in its year window falls back to a direct minimum search, which also
/// handles far-future jumps. The bucket width tracks an EWMA of observed
/// pop-to-pop gaps, and the bucket count doubles when occupancy exceeds two
/// per bucket and halves below one per two buckets (ns-2's resize policy),
/// so push and pop stay O(1) amortised against the heap's O(log n).
///
/// Because equal times always map to the same bucket, FIFO ties cost one
/// sorted-insert into a run of equal-time entries and pop in insertion order.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_nanos(10);
/// q.push(t, 'a');
/// q.push(t, 'b');
/// assert_eq!(q.pop(), Some((t, 'a')));
/// assert_eq!(q.pop(), Some((t, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Bucket width in nanoseconds (≥ 1).
    width: u64,
    len: usize,
    next_seq: u64,
    /// Time of the most recent pop — the queue's notion of "now" and the
    /// monotonicity floor for [`Self::push`]. Pops at an equal timestamp
    /// are legal and keep FIFO order via `next_seq`; only a push *behind*
    /// this stamp is a bug (it would mean an event tried to reach into the
    /// simulated past) and panics with the event's debug summary.
    last_popped: SimTime,
    /// Bucket the next lap scan starts from. Committed only at pop time
    /// (and at resize), which keeps the scan invariant `window start ≤`
    /// [`Self::now`] `≤ every queued time` true at all times.
    cursor: usize,
    /// Exclusive end of the cursor bucket's current year window (u128: the
    /// window math must not overflow near `SimTime::MAX`).
    year_end: u128,
    /// EWMA of nonzero gaps between consecutively popped times; feeds the
    /// bucket width at the next resize.
    gap_avg: u64,
    /// Cached minimum, maintained by pushes and invalidated by pops and
    /// resizes; `Cell` so [`Self::peek_time`] can memoise its search.
    hint: Cell<Option<Hint>>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let width = INITIAL_GAP * 2;
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            cursor: 0,
            year_end: u128::from(width),
            gap_avg: INITIAL_GAP,
            hint: Cell::new(None),
        }
    }

    fn bucket_of(&self, time: SimTime) -> usize {
        ((time.as_nanos() / self.width) as usize) & (self.buckets.len() - 1)
    }

    fn window_end(&self, time: SimTime) -> u128 {
        let w = u128::from(self.width);
        (u128::from(time.as_nanos()) / w + 1) * w
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulation bug. The message carries the
    /// offending event's debug summary alongside the two times.
    pub fn push(&mut self, time: SimTime, event: E)
    where
        E: Debug,
    {
        assert!(
            time >= self.last_popped,
            "scheduled event at {time} before current time {}: {event:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.len + 1 > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        let bucket = self.bucket_of(time);
        Self::insert_sorted(&mut self.buckets[bucket], Entry { time, seq, event });
        self.len += 1;
        if let Some(h) = self.hint.get() {
            if time < h.time {
                self.hint.set(Some(Hint { time, bucket }));
            }
        } else if self.len == 1 {
            // Only event in the queue: it is trivially the minimum. The
            // cursor is NOT moved here — commits happen at pop time only.
            self.hint.set(Some(Hint { time, bucket }));
        }
    }

    /// Inserts keeping the deque sorted by `(time, seq)`. Fresh pushes carry
    /// the largest `seq` so far, so this walks back only past strictly later
    /// times — O(1) for the common append case.
    fn insert_sorted(deque: &mut VecDeque<Entry<E>>, entry: Entry<E>) {
        let mut pos = deque.len();
        while pos > 0 {
            let prev = &deque[pos - 1];
            if (prev.time, prev.seq) <= (entry.time, entry.seq) {
                break;
            }
            pos -= 1;
        }
        deque.insert(pos, entry);
    }

    /// Locates the bucket holding the global `(time, seq)` minimum: one lap
    /// from the committed cursor checking each bucket head against its year
    /// window, then a direct minimum search over all heads (far-future
    /// fallback). Equal times share a bucket, so the minimal head time is
    /// unique and identifies the bucket unambiguously.
    fn locate_min(&self) -> Hint {
        if let Some(h) = self.hint.get() {
            return h;
        }
        let n = self.buckets.len();
        let mut top = self.year_end;
        for i in 0..n {
            let b = (self.cursor + i) & (n - 1);
            if let Some(head) = self.buckets[b].front() {
                if u128::from(head.time.as_nanos()) < top {
                    let h = Hint { time: head.time, bucket: b };
                    self.hint.set(Some(h));
                    return h;
                }
            }
            top += u128::from(self.width);
        }
        let mut best: Option<Hint> = None;
        for (b, q) in self.buckets.iter().enumerate() {
            if let Some(head) = q.front() {
                if best.is_none_or(|h| head.time < h.time) {
                    best = Some(Hint { time: head.time, bucket: b });
                }
            }
        }
        let Some(h) = best else { unreachable!("locate_min called on an empty queue") };
        self.hint.set(Some(h));
        h
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_nth(0)
    }

    /// Removes and returns the `n`-th event (FIFO order) among those tied at
    /// the earliest pending time; `pop_nth(0)` is exactly [`Self::pop`].
    /// Returns `None` when the queue is empty or `n` is outside the tie run
    /// (the queue is untouched in that case). The remaining tied events keep
    /// their original insertion sequence, so FIFO order among them survives.
    pub fn pop_nth(&mut self, n: usize) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let Hint { time, bucket } = self.locate_min();
        // Equal times share a bucket and sort contiguously at its front, so
        // the tie run occupies positions `0..k` of the min bucket's deque.
        if self.buckets[bucket].get(n).is_none_or(|e| e.time != time) {
            return None;
        }
        // Commit the cursor: the window start is ≤ the popped time, which
        // becomes `last_popped`, so every later push lands at or ahead of it.
        self.cursor = bucket;
        self.year_end = self.window_end(time);
        let Some(entry) = self.buckets[bucket].remove(n) else {
            unreachable!("tie entry vanished from its bucket")
        };
        debug_assert!(entry.time == time, "hint disagreed with bucket head");
        self.len -= 1;
        let gap = entry.time.as_nanos() - self.last_popped.as_nanos();
        if gap > 0 {
            self.gap_avg = (self.gap_avg.saturating_mul(3).saturating_add(gap)) / 4;
        }
        self.last_popped = entry.time;
        self.hint.set(None);
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        } else if let Some(head) = self.buckets[bucket].front() {
            // The next head of the popped bucket is the global minimum while
            // it stays inside the committed year window (same argument as
            // the lap scan's first bucket) — covers bursts and FIFO ties.
            if u128::from(head.time.as_nanos()) < self.year_end {
                self.hint.set(Some(Hint { time: head.time, bucket }));
            }
        }
        Some((entry.time, entry.event))
    }

    /// The `(time, seq)` key of the earliest pending entry, if any. Equal
    /// times share a bucket and sort contiguously at its front, so the
    /// located bucket's head *is* the global `(time, seq)` minimum — this
    /// is what the sharded queue's k-way merge compares across sub-queues.
    pub(crate) fn peek_key(&self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        let Hint { bucket, .. } = self.locate_min();
        self.buckets[bucket].front().map(|e| (e.time, e.seq))
    }

    /// Schedules `event` at `time` carrying an externally assigned sequence
    /// number — the sharded queue's global counter. The caller must hand
    /// out strictly increasing sequences per sub-queue (a global counter
    /// trivially does), so `insert_sorted` keeps its append fast path.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than this sub-queue's last popped event.
    pub(crate) fn push_with_seq(&mut self, time: SimTime, seq: u64, event: E)
    where
        E: Debug,
    {
        assert!(
            time >= self.last_popped,
            "scheduled event at {time} before current time {}: {event:?}",
            self.last_popped
        );
        if self.len + 1 > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        let bucket = self.bucket_of(time);
        Self::insert_sorted(&mut self.buckets[bucket], Entry { time, seq, event });
        self.len += 1;
        if let Some(h) = self.hint.get() {
            if time < h.time {
                self.hint.set(Some(Hint { time, bucket }));
            }
        } else if self.len == 1 {
            self.hint.set(Some(Hint { time, bucket }));
        }
    }

    /// Number of pending events tied at the earliest time (0 when empty).
    pub fn tie_count(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let Hint { time, bucket } = self.locate_min();
        self.buckets[bucket].iter().take_while(|e| e.time == time).count()
    }

    /// Visits each head-time tie as `(seq, event)` in FIFO order — the
    /// sharded queue merges these runs across sub-queues by `seq`.
    pub(crate) fn for_each_tie_entry<'a>(&'a self, mut f: impl FnMut(u64, &'a E)) {
        if self.len == 0 {
            return;
        }
        let Hint { time, bucket } = self.locate_min();
        for entry in self.buckets[bucket].iter().take_while(|e| e.time == time) {
            f(entry.seq, &entry.event);
        }
    }

    /// Visits each event tied at the earliest time, in FIFO order.
    pub fn for_each_tie(&self, mut f: impl FnMut(&E)) {
        if self.len == 0 {
            return;
        }
        let Hint { time, bucket } = self.locate_min();
        for entry in self.buckets[bucket].iter().take_while(|e| e.time == time) {
            f(&entry.event);
        }
    }

    /// Rebuilds the bucket array at `nbuckets` (a power of two), re-deriving
    /// the width from the pop-gap EWMA so each bucket spans roughly two
    /// expected events, and re-anchoring the cursor at [`Self::now`].
    fn resize(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        self.width = self.gap_avg.saturating_mul(2).max(1);
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for q in &mut self.buckets {
            all.extend(q.drain(..));
        }
        all.sort_unstable_by_key(|a| (a.time, a.seq));
        self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        for entry in all {
            let b = self.bucket_of(entry.time);
            // Entries arrive in (time, seq) order, so push_back keeps every
            // bucket sorted without a search.
            self.buckets[b].push_back(entry);
        }
        self.cursor = self.bucket_of(self.last_popped);
        self.year_end = self.window_end(self.last_popped);
        self.hint.set(None);
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        Some(self.locate_min().time)
    }

    /// The virtual time of the most recently popped event — the tie stamp
    /// against which [`Self::push`] enforces monotonicity.
    ///
    /// Pushing at exactly `now()` is allowed: the new event sorts after
    /// everything already popped (its pop is still in the future) and after
    /// any pending event at the same instant that was pushed earlier (FIFO).
    /// `now()` never moves backwards; it advances only when `pop` returns an
    /// event with a strictly later time.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Number of pending events. This is a live count maintained by
    /// push/pop, so the driver's high-water mark reads it for free.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Every pending entry as `(time, seq, event)` in `(time, seq)` order —
    /// the canonical form the snapshot codec stores. Calendar internals
    /// (bucket layout, width, gap EWMA) are deliberately not part of it:
    /// they are a performance cache, rebuilt on restore, and the pop order
    /// depends only on `(time, seq)`.
    fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut all: Vec<(SimTime, u64, &E)> =
            self.buckets.iter().flatten().map(|e| (e.time, e.seq, &e.event)).collect();
        all.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        all
    }

    /// Rebuilds a queue from its canonical snapshot form. Entries must
    /// arrive in `(time, seq)` order at or after `last_popped`; sequence
    /// numbers are preserved so FIFO ties replay identically.
    fn from_restored(last_popped: SimTime, next_seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self
    where
        E: Debug,
    {
        let mut q = EventQueue::new();
        q.last_popped = last_popped;
        q.cursor = q.bucket_of(last_popped);
        q.year_end = q.window_end(last_popped);
        for (time, seq, event) in entries {
            if q.len + 1 > q.buckets.len() * 2 {
                q.resize(q.buckets.len() * 2);
            }
            let bucket = q.bucket_of(time);
            Self::insert_sorted(&mut q.buckets[bucket], Entry { time, seq, event });
            q.len += 1;
        }
        q.hint.set(None);
        q.next_seq = next_seq;
        q
    }
}

/// The original `BinaryHeap`-backed queue: same contract as [`EventQueue`]
/// (time order, FIFO ties, monotonic push), O(log n) push/pop. Kept as the
/// reference implementation the differential property tests and the
/// scheduler microbenchmarks compare the calendar queue against.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: SimTime::ZERO }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event (with the
    /// offending event's debug summary, mirroring [`EventQueue::push`]).
    pub fn push(&mut self, time: SimTime, event: E)
    where
        E: Debug,
    {
        assert!(
            time >= self.last_popped,
            "scheduled event at {time} before current time {}: {event:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.last_popped, "event queue went backwards");
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// Removes and returns the `n`-th event (FIFO order) among those tied at
    /// the earliest pending time (see [`EventQueue::pop_nth`]). The other
    /// tied entries are re-inserted with their original sequence numbers, so
    /// FIFO order among the survivors is preserved.
    pub fn pop_nth(&mut self, n: usize) -> Option<(SimTime, E)> {
        let time = self.heap.peek()?.time;
        // The heap pops `(time, seq)` ascending, so draining the tie run
        // yields it already in FIFO order.
        let mut tied: Vec<Entry<E>> = Vec::new();
        while self.heap.peek().is_some_and(|e| e.time == time) {
            if let Some(entry) = self.heap.pop() {
                tied.push(entry);
            }
        }
        if n >= tied.len() {
            self.heap.extend(tied);
            return None;
        }
        // swap_remove scrambles the survivors' order, but re-inserting into
        // the heap restores `(time, seq)` order from the preserved seqs.
        let entry = tied.swap_remove(n);
        self.heap.extend(tied);
        debug_assert!(entry.time >= self.last_popped, "event queue went backwards");
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// Number of pending events tied at the earliest time (0 when empty).
    pub fn tie_count(&self) -> usize {
        let Some(head) = self.heap.peek() else { return 0 };
        self.heap.iter().filter(|e| e.time == head.time).count()
    }

    /// Visits each event tied at the earliest time, in FIFO order.
    pub fn for_each_tie(&self, mut f: impl FnMut(&E)) {
        let Some(head) = self.heap.peek() else { return };
        let mut tied: Vec<&Entry<E>> = self.heap.iter().filter(|e| e.time == head.time).collect();
        tied.sort_unstable_by_key(|e| e.seq);
        for entry in tied {
            f(&entry.event);
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The virtual time of the most recently popped event (see
    /// [`EventQueue::now`] for the tie-stamp semantics).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Pending entries in `(time, seq)` order (see
    /// [`EventQueue::snapshot_entries`]).
    fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut all: Vec<(SimTime, u64, &E)> =
            self.heap.iter().map(|e| (e.time, e.seq, &e.event)).collect();
        all.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        all
    }

    /// Rebuilds a queue from its canonical snapshot form with sequence
    /// numbers preserved.
    fn from_restored(last_popped: SimTime, next_seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self {
        let heap =
            entries.into_iter().map(|(time, seq, event)| Entry { time, seq, event }).collect();
        HeapQueue { heap, next_seq, last_popped }
    }
}

/// Default sub-queue count for a [`ShardedQueue`] created without an
/// explicit shard count (matches the 4-shard target of the PDES bench).
pub const DEFAULT_SHARDS: usize = 4;

/// Largest shard count the sharded queue accepts (its snapshot codec tags
/// each entry's home shard with one byte).
pub const MAX_SHARDS: usize = 255;

/// The conservative-PDES event queue: one calendar sub-queue per shard,
/// all sharing a single global sequence counter, popped by a k-way merge
/// on `(time, seq)` across the sub-queue heads.
///
/// # Determinism by construction
///
/// `(time, seq)` totally orders events, and `seq` is assigned at push time
/// exactly as the serial queues assign it — one global counter, one
/// increment per push. Routing (which sub-queue physically holds an entry)
/// therefore decides *load balance only*: the merged pop order equals the
/// serial calendar queue's for **any** routing function, and a shard count
/// of 1 *is* the calendar queue. This is the deterministic reduction point
/// of the sharded driver — cross-shard deliveries are ordinary timestamped
/// pushes into the receiver's home sub-queue, merged back here.
///
/// # Example
///
/// ```
/// use sim_core::{ShardedQueue, SimTime};
///
/// let mut q = ShardedQueue::new(2);
/// let t = SimTime::from_nanos(10);
/// q.push_routed(t, 'a', 0);
/// q.push_routed(t, 'b', 1); // different shard, same instant
/// assert_eq!(q.pop(), Some((t, 'a'))); // FIFO across shards
/// assert_eq!(q.pop(), Some((t, 'b')));
/// ```
#[derive(Debug)]
pub struct ShardedQueue<E> {
    shards: Vec<EventQueue<E>>,
    /// The single global push counter all sub-queues share.
    next_seq: u64,
    /// Time of the most recent merged pop (the global "now").
    last_popped: SimTime,
    len: usize,
    /// Sub-queue that served the most recent pop (per-shard accounting).
    last_shard: usize,
}

impl<E> ShardedQueue<E> {
    /// Creates an empty queue with `shards` sub-queues (clamped to at
    /// least 1).
    ///
    /// # Panics
    ///
    /// Panics if `shards` exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        assert!(shards <= MAX_SHARDS, "shard count {shards} exceeds {MAX_SHARDS}");
        ShardedQueue {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            len: 0,
            last_shard: 0,
        }
    }

    /// Number of sub-queues.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sub-queue that served the most recent [`Self::pop`] (0 before any).
    pub fn last_shard(&self) -> usize {
        self.last_shard
    }

    /// Schedules `event` at `time` in sub-queue `shard % shard_count`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last merged pop.
    pub fn push_routed(&mut self, time: SimTime, event: E, shard: usize)
    where
        E: Debug,
    {
        assert!(
            time >= self.last_popped,
            "scheduled event at {time} before current time {}: {event:?}",
            self.last_popped
        );
        let s = shard % self.shards.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[s].push_with_seq(time, seq, event);
        self.len += 1;
    }

    /// Schedules `event` at `time`, spreading routing round-robin (callers
    /// that know an owner shard should use [`Self::push_routed`]; the
    /// choice affects only which sub-queue holds the entry, never the pop
    /// order).
    pub fn push(&mut self, time: SimTime, event: E)
    where
        E: Debug,
    {
        let shard = (self.next_seq as usize) % self.shards.len();
        self.push_routed(time, event, shard);
    }

    /// Sub-queue holding the globally earliest `(time, seq)` entry.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (s, q) in self.shards.iter().enumerate() {
            if let Some((time, seq)) = q.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (time, seq) < (bt, bs)) {
                    best = Some((time, seq, s));
                }
            }
        }
        best.map(|(_, _, s)| s)
    }

    /// Removes and returns the earliest event across all sub-queues.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.min_shard()?;
        let popped = self.shards[s].pop()?;
        self.len -= 1;
        self.last_popped = popped.0;
        self.last_shard = s;
        Some(popped)
    }

    /// Head-time ties across all sub-queues as `(seq, shard)`, ascending by
    /// `seq` — the merged FIFO run the tie-order hook sees.
    fn merged_ties(&self) -> Vec<(u64, usize)> {
        let Some(time) = self.peek_time() else { return Vec::new() };
        let mut ties: Vec<(u64, usize)> = Vec::new();
        for (s, q) in self.shards.iter().enumerate() {
            if q.peek_time() == Some(time) {
                q.for_each_tie_entry(|seq, _| ties.push((seq, s)));
            }
        }
        ties.sort_unstable();
        ties
    }

    /// Removes and returns the `n`-th event (global FIFO order) among those
    /// tied at the earliest pending time (see [`EventQueue::pop_nth`]).
    pub fn pop_nth(&mut self, n: usize) -> Option<(SimTime, E)> {
        let ties = self.merged_ties();
        let &(seq, shard) = ties.get(n)?;
        // The shard's own tie run is seq-ascending, so the local index is
        // how many of its tied entries precede `seq` in the merged run.
        let local = ties[..n].iter().filter(|&&(_, s)| s == shard).count();
        debug_assert!({
            let mut kth = None;
            let mut i = 0;
            self.shards[shard].for_each_tie_entry(|s, _| {
                if i == local {
                    kth = Some(s);
                }
                i += 1;
            });
            kth == Some(seq)
        });
        let popped = self.shards[shard].pop_nth(local)?;
        self.len -= 1;
        self.last_popped = popped.0;
        self.last_shard = shard;
        Some(popped)
    }

    /// Number of pending events tied at the earliest time (0 when empty).
    pub fn tie_count(&self) -> usize {
        let Some(time) = self.peek_time() else { return 0 };
        self.shards.iter().filter(|q| q.peek_time() == Some(time)).map(|q| q.tie_count()).sum()
    }

    /// Visits each event tied at the earliest time, in global FIFO order
    /// (merged across sub-queues by `seq`).
    pub fn for_each_tie(&self, mut f: impl FnMut(&E)) {
        let Some(time) = self.peek_time() else { return };
        let mut ties: Vec<(u64, &E)> = Vec::new();
        for q in &self.shards {
            if q.peek_time() == Some(time) {
                q.for_each_tie_entry(|seq, e| ties.push((seq, e)));
            }
        }
        ties.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, e) in ties {
            f(e);
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, u64)> = None;
        for q in &self.shards {
            if let Some(key) = q.peek_key() {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(time, _)| time)
    }

    /// The virtual time of the most recent merged pop (see
    /// [`EventQueue::now`]).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Number of pending events across all sub-queues.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> ShardedQueue<E> {
    /// Pending entries as `(time, seq, shard, event)` in `(time, seq)`
    /// order — the canonical snapshot form, which must also record each
    /// entry's home sub-queue so a restore rebuilds the same placement.
    fn snapshot_entries(&self) -> Vec<(SimTime, u64, usize, &E)> {
        let mut all: Vec<(SimTime, u64, usize, &E)> = Vec::with_capacity(self.len);
        for (s, q) in self.shards.iter().enumerate() {
            all.extend(q.snapshot_entries().into_iter().map(|(time, seq, e)| (time, seq, s, e)));
        }
        all.sort_unstable_by_key(|&(time, seq, _, _)| (time, seq));
        all
    }

    /// Rebuilds a queue from its canonical snapshot form. Entries must
    /// arrive in `(time, seq)` order with valid shard tags.
    fn from_restored(
        shard_count: usize,
        last_popped: SimTime,
        next_seq: u64,
        entries: Vec<(SimTime, u64, usize, E)>,
    ) -> Self
    where
        E: Debug,
    {
        let len = entries.len();
        let mut per_shard: Vec<Vec<(SimTime, u64, E)>> =
            (0..shard_count.max(1)).map(|_| Vec::new()).collect();
        for (time, seq, shard, event) in entries {
            per_shard[shard].push((time, seq, event));
        }
        let shards = per_shard
            .into_iter()
            .map(|entries| EventQueue::from_restored(last_popped, next_seq, entries))
            .collect();
        ShardedQueue { shards, next_seq, last_popped, len, last_shard: 0 }
    }
}

/// Which scheduler backs a simulation's event queue.
///
/// All kinds are contractually identical (the scenario corpus asserts equal
/// trace hashes across them); `Heap` exists so benchmarks and differential
/// tests can run the reference implementation end to end, and `Sharded`
/// partitions the queue into per-shard sub-queues for the conservative
/// parallel driver while preserving the serial pop order by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The calendar queue — the default, O(1) amortised.
    #[default]
    Calendar,
    /// The reference `BinaryHeap`, O(log n).
    Heap,
    /// Per-shard calendar sub-queues merged on `(time, seq)` — the
    /// conservative parallel driver's queue. Bit-identical to `Calendar`.
    Sharded,
}

/// An event queue dispatching on [`SchedulerKind`] at runtime, so a driver
/// can be steered onto either scheduler by configuration.
#[derive(Debug)]
pub enum DriverQueue<E> {
    /// Backed by the calendar queue.
    Calendar(EventQueue<E>),
    /// Backed by the reference heap.
    Heap(HeapQueue<E>),
    /// Backed by per-shard calendar sub-queues with a merged pop.
    Sharded(ShardedQueue<E>),
}

impl<E: Debug> DriverQueue<E> {
    /// Creates an empty queue backed by `kind` (`Sharded` gets
    /// [`DEFAULT_SHARDS`] sub-queues; use [`Self::new_sharded`] for an
    /// explicit count).
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Calendar => DriverQueue::Calendar(EventQueue::new()),
            SchedulerKind::Heap => DriverQueue::Heap(HeapQueue::new()),
            SchedulerKind::Sharded => DriverQueue::Sharded(ShardedQueue::new(DEFAULT_SHARDS)),
        }
    }

    /// Creates an empty sharded queue with `shards` sub-queues.
    pub fn new_sharded(shards: usize) -> Self {
        DriverQueue::Sharded(ShardedQueue::new(shards))
    }

    /// Schedules `event` at `time`; panics on non-monotonic times.
    pub fn push(&mut self, time: SimTime, event: E) {
        match self {
            DriverQueue::Calendar(q) => q.push(time, event),
            DriverQueue::Heap(q) => q.push(time, event),
            DriverQueue::Sharded(q) => q.push(time, event),
        }
    }

    /// Schedules `event` at `time` with a routing hint: the sharded queue
    /// places it in sub-queue `shard % shard_count` (the event owner's home
    /// shard), the serial queues ignore the hint. Routing never changes pop
    /// order — only which sub-queue carries the entry.
    pub fn push_routed(&mut self, time: SimTime, event: E, shard: usize) {
        match self {
            DriverQueue::Calendar(q) => q.push(time, event),
            DriverQueue::Heap(q) => q.push(time, event),
            DriverQueue::Sharded(q) => q.push_routed(time, event, shard),
        }
    }

    /// Number of sub-queues (1 for the serial kinds).
    pub fn shard_count(&self) -> usize {
        match self {
            DriverQueue::Sharded(q) => q.shard_count(),
            _ => 1,
        }
    }

    /// Sub-queue that served the most recent pop (0 for the serial kinds).
    pub fn last_shard(&self) -> usize {
        match self {
            DriverQueue::Sharded(q) => q.last_shard(),
            _ => 0,
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            DriverQueue::Calendar(q) => q.pop(),
            DriverQueue::Heap(q) => q.pop(),
            DriverQueue::Sharded(q) => q.pop(),
        }
    }

    /// Removes and returns the `n`-th event (FIFO order) among those tied at
    /// the earliest time; `pop_nth(0)` is exactly [`Self::pop`]. See
    /// [`EventQueue::pop_nth`].
    pub fn pop_nth(&mut self, n: usize) -> Option<(SimTime, E)> {
        match self {
            DriverQueue::Calendar(q) => q.pop_nth(n),
            DriverQueue::Heap(q) => q.pop_nth(n),
            DriverQueue::Sharded(q) => q.pop_nth(n),
        }
    }

    /// Number of pending events tied at the earliest time (0 when empty).
    pub fn tie_count(&self) -> usize {
        match self {
            DriverQueue::Calendar(q) => q.tie_count(),
            DriverQueue::Heap(q) => q.tie_count(),
            DriverQueue::Sharded(q) => q.tie_count(),
        }
    }

    /// Visits each event tied at the earliest time, in FIFO order.
    pub fn for_each_tie(&self, f: impl FnMut(&E)) {
        match self {
            DriverQueue::Calendar(q) => q.for_each_tie(f),
            DriverQueue::Heap(q) => q.for_each_tie(f),
            DriverQueue::Sharded(q) => q.for_each_tie(f),
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            DriverQueue::Calendar(q) => q.peek_time(),
            DriverQueue::Heap(q) => q.peek_time(),
            DriverQueue::Sharded(q) => q.peek_time(),
        }
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        match self {
            DriverQueue::Calendar(q) => q.now(),
            DriverQueue::Heap(q) => q.now(),
            DriverQueue::Sharded(q) => q.now(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            DriverQueue::Calendar(q) => q.len(),
            DriverQueue::Heap(q) => q.len(),
            DriverQueue::Sharded(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E: crate::Snapshotable + Debug> crate::Snapshotable for DriverQueue<E> {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        // Kind tag 2 (sharded) extends the serial layout with the shard
        // count up front and a one-byte home-shard tag per entry; entries
        // stay in the canonical merged `(time, seq)` order.
        if let DriverQueue::Sharded(q) = self {
            w.put_u8(2);
            w.put_usize(q.shard_count());
            w.put(&q.last_popped);
            w.put_u64(q.next_seq);
            let entries = q.snapshot_entries();
            w.put_usize(entries.len());
            for (time, seq, shard, event) in entries {
                w.put(&time);
                w.put_u64(seq);
                w.put_u8(shard as u8);
                event.encode(w);
            }
            return;
        }
        let (kind, last_popped, next_seq, entries) = match self {
            DriverQueue::Calendar(q) => (0u8, q.last_popped, q.next_seq, q.snapshot_entries()),
            DriverQueue::Heap(q) => (1u8, q.last_popped, q.next_seq, q.snapshot_entries()),
            DriverQueue::Sharded(_) => unreachable!("handled above"),
        };
        w.put_u8(kind);
        w.put(&last_popped);
        w.put_u64(next_seq);
        w.put_usize(entries.len());
        for (time, seq, event) in entries {
            w.put(&time);
            w.put_u64(seq);
            event.encode(w);
        }
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        let kind = r.take_u8()?;
        if kind == 2 {
            let shard_count = r.take_usize()?;
            if shard_count == 0 || shard_count > MAX_SHARDS {
                return Err(crate::SnapError::Invalid("shard count"));
            }
            let last_popped: SimTime = r.get()?;
            let next_seq = r.take_u64()?;
            let count = r.take_usize()?;
            let mut entries: Vec<(SimTime, u64, usize, E)> = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let time: SimTime = r.get()?;
                let seq = r.take_u64()?;
                let shard = usize::from(r.take_u8()?);
                let event = E::decode(r)?;
                if time < last_popped {
                    return Err(crate::SnapError::Invalid("queued event before now"));
                }
                if seq >= next_seq {
                    return Err(crate::SnapError::Invalid("queued event seq from the future"));
                }
                if shard >= shard_count {
                    return Err(crate::SnapError::Invalid("entry shard out of range"));
                }
                if let Some(&(pt, ps, _, _)) = entries.last() {
                    if (time, seq) <= (pt, ps) {
                        return Err(crate::SnapError::Invalid("queue entries out of order"));
                    }
                }
                entries.push((time, seq, shard, event));
            }
            return Ok(DriverQueue::Sharded(ShardedQueue::from_restored(
                shard_count,
                last_popped,
                next_seq,
                entries,
            )));
        }
        let last_popped: SimTime = r.get()?;
        let next_seq = r.take_u64()?;
        let count = r.take_usize()?;
        let mut entries: Vec<(SimTime, u64, E)> = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let time: SimTime = r.get()?;
            let seq = r.take_u64()?;
            let event = E::decode(r)?;
            if time < last_popped {
                return Err(crate::SnapError::Invalid("queued event before now"));
            }
            if seq >= next_seq {
                return Err(crate::SnapError::Invalid("queued event seq from the future"));
            }
            if let Some(&(pt, ps, _)) = entries.last() {
                if (time, seq) <= (pt, ps) {
                    return Err(crate::SnapError::Invalid("queue entries out of order"));
                }
            }
            entries.push((time, seq, event));
        }
        match kind {
            0 => {
                Ok(DriverQueue::Calendar(EventQueue::from_restored(last_popped, next_seq, entries)))
            }
            1 => Ok(DriverQueue::Heap(HeapQueue::from_restored(last_popped, next_seq, entries))),
            _ => Err(crate::SnapError::Invalid("scheduler kind tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 'a');
        assert_eq!(q.pop(), Some((t(10), 'a')));
        q.push(t(10), 'b'); // same instant as "now" is allowed
        q.push(t(15), 'c');
        assert_eq!(q.pop(), Some((t(10), 'b')));
        assert_eq!(q.pop(), Some((t(15), 'c')));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(t(10), ());
        q.pop();
        q.push(t(9), ());
    }

    #[test]
    fn past_panic_names_the_event() {
        let caught = std::panic::catch_unwind(|| {
            let mut q = EventQueue::new();
            q.push(t(10), "late-rto");
            q.pop();
            q.push(t(9), "late-rto");
        });
        let msg = caught.unwrap_err();
        let msg = msg.downcast_ref::<String>().expect("formatted panic message");
        assert!(msg.contains("late-rto"), "panic must carry the event: {msg}");
    }

    #[test]
    fn now_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(t(42), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(42)));
        q.pop();
        assert_eq!(q.now(), t(42));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_jump_then_near_pushes() {
        // A pop far in the future commits the cursor out there; pushes at
        // (or just after) the new `now` must still be found by the scan.
        let mut q = EventQueue::new();
        q.push(t(10_000_000_000), 'f'); // +10 s
        assert_eq!(q.pop(), Some((t(10_000_000_000), 'f')));
        q.push(t(10_000_000_000), 'a'); // exactly at now
        q.push(t(10_000_000_001), 'b');
        q.push(t(10_000_500_000), 'c');
        assert_eq!(q.pop(), Some((t(10_000_000_000), 'a')));
        assert_eq!(q.pop(), Some((t(10_000_000_001), 'b')));
        assert_eq!(q.pop(), Some((t(10_000_500_000), 'c')));
    }

    #[test]
    fn grow_and_shrink_preserve_order() {
        // Push enough to force several grows, drain to force shrinks, with
        // deliberately colliding times so sorted-insert paths are exercised.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0u64..5_000 {
            let time = t((i * 7919) % 1_000 * 1_000);
            q.push(time, i);
            expect.push((time, i));
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "growth heuristic never fired");
        expect.sort_by_key(|&(time, i)| (time, i));
        for (time, i) in expect {
            assert_eq!(q.pop(), Some((time, i)));
        }
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "drained queue should shrink back");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_heap_reference_on_mixed_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // including ties and multi-year spreads, checked pop-for-pop
        // against the reference heap.
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        for i in 0..20_000u64 {
            let r = step(&mut state);
            if r % 100 < 65 {
                let base = cal.now().as_nanos();
                let delta = match r % 3 {
                    0 => r % 50,                // tie-heavy
                    1 => r % 1_000_000,         // in-year
                    _ => 1_000_000_000 + r % 7, // far future
                };
                cal.push(t(base + delta), i);
                heap.push(t(base + delta), i);
            } else {
                assert_eq!(cal.pop(), heap.pop());
                assert_eq!(cal.now(), heap.now());
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn heap_queue_keeps_contract() {
        let mut q = HeapQueue::new();
        q.push(t(5), 'b');
        q.push(t(1), 'a');
        q.push(t(5), 'c');
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.pop(), Some((t(1), 'a')));
        assert_eq!(q.pop(), Some((t(5), 'b')));
        assert_eq!(q.pop(), Some((t(5), 'c')));
        assert_eq!(q.now(), t(5));
        assert!(q.is_empty());
    }

    #[test]
    fn tie_count_and_for_each_tie_see_the_fifo_run() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap, SchedulerKind::Sharded] {
            let mut q = DriverQueue::new(kind);
            assert_eq!(q.tie_count(), 0);
            q.push(t(10), 'a');
            q.push(t(10), 'b');
            q.push(t(10), 'c');
            q.push(t(20), 'z');
            assert_eq!(q.tie_count(), 3);
            let mut seen = Vec::new();
            q.for_each_tie(|&e| seen.push(e));
            assert_eq!(seen, vec!['a', 'b', 'c'], "{kind:?}: ties must visit in FIFO order");
            q.pop();
            assert_eq!(q.tie_count(), 2);
            q.pop();
            q.pop();
            assert_eq!(q.tie_count(), 1, "{kind:?}: a lone head is a tie run of one");
        }
    }

    #[test]
    fn pop_nth_picks_one_tie_and_keeps_fifo_for_the_rest() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap, SchedulerKind::Sharded] {
            let mut q = DriverQueue::new(kind);
            for e in ['a', 'b', 'c', 'd'] {
                q.push(t(10), e);
            }
            q.push(t(20), 'z');
            assert_eq!(q.pop_nth(2), Some((t(10), 'c')), "{kind:?}");
            assert_eq!(q.pop_nth(4), None, "{kind:?}: out-of-run index must not pop");
            assert_eq!(q.len(), 4, "{kind:?}: failed pop_nth must not lose events");
            assert_eq!(q.pop(), Some((t(10), 'a')), "{kind:?}");
            assert_eq!(q.pop(), Some((t(10), 'b')), "{kind:?}");
            assert_eq!(q.pop(), Some((t(10), 'd')), "{kind:?}");
            assert_eq!(q.pop(), Some((t(20), 'z')), "{kind:?}");
            // Pushing at `now` after a pop_nth keeps working (cursor committed).
            q.push(t(20), 'y');
            assert_eq!(q.pop_nth(0), Some((t(20), 'y')), "{kind:?}");
        }
    }

    #[test]
    fn pop_nth_zero_is_exactly_pop() {
        // Same deterministic mixed workload on four queues: two popped with
        // `pop()`, two with `pop_nth(0)` — every observation must agree.
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap, SchedulerKind::Sharded] {
            let mut plain = DriverQueue::new(kind);
            let mut nth = DriverQueue::new(kind);
            let mut state = 0xdeadbeefu64;
            let step = |s: &mut u64| {
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                *s
            };
            for i in 0..5_000u64 {
                let r = step(&mut state);
                if r % 10 < 6 {
                    let base = plain.now().as_nanos();
                    let delta = if r % 2 == 0 { r % 20 } else { r % 500_000 };
                    plain.push(t(base + delta), i);
                    nth.push(t(base + delta), i);
                } else {
                    assert_eq!(plain.pop(), nth.pop_nth(0), "{kind:?}");
                    assert_eq!(plain.now(), nth.now(), "{kind:?}");
                    assert_eq!(plain.peek_time(), nth.peek_time(), "{kind:?}");
                }
            }
            loop {
                let (a, b) = (plain.pop(), nth.pop_nth(0));
                assert_eq!(a, b, "{kind:?}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn driver_queue_dispatches_both_kinds() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap, SchedulerKind::Sharded] {
            let mut q = DriverQueue::new(kind);
            q.push(t(20), 'y');
            q.push(t(10), 'x');
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(t(10)));
            assert_eq!(q.pop(), Some((t(10), 'x')));
            assert_eq!(q.now(), t(10));
            assert_eq!(q.pop(), Some((t(20), 'y')));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn sharded_pops_fifo_across_shards() {
        // Ties spread over different home shards must still pop in global
        // push order: the shared seq counter is the only tiebreak.
        let mut q = ShardedQueue::new(4);
        for (i, shard) in [2usize, 0, 3, 1, 2, 0].into_iter().enumerate() {
            q.push_routed(t(10), i, shard);
        }
        q.push_routed(t(5), 99, 3);
        assert_eq!(q.pop(), Some((t(5), 99)));
        for i in 0..6 {
            assert_eq!(q.pop(), Some((t(10), i)));
        }
        assert!(q.is_empty());
        assert_eq!(q.now(), t(10));
    }

    #[test]
    fn sharded_matches_calendar_for_any_routing() {
        // The pop stream must be independent of the routing function — it
        // only decides which sub-queue holds an entry, never its rank.
        for shards in [1usize, 2, 4, 7] {
            let mut sharded = ShardedQueue::new(shards);
            let mut cal = EventQueue::new();
            let mut state = 0xabcdefu64;
            let step = |s: &mut u64| {
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                *s
            };
            for i in 0..10_000u64 {
                let r = step(&mut state);
                if r % 10 < 6 {
                    let base = cal.now().as_nanos();
                    let delta = if r % 2 == 0 { r % 30 } else { r % 400_000 };
                    sharded.push_routed(t(base + delta), i, (r % 11) as usize);
                    cal.push(t(base + delta), i);
                } else {
                    assert_eq!(sharded.pop(), cal.pop(), "shards={shards}");
                    assert_eq!(sharded.now(), cal.now(), "shards={shards}");
                }
                assert_eq!(sharded.len(), cal.len(), "shards={shards}");
                assert_eq!(sharded.peek_time(), cal.peek_time(), "shards={shards}");
                assert_eq!(sharded.tie_count(), cal.tie_count(), "shards={shards}");
            }
            loop {
                let (a, b) = (sharded.pop(), cal.pop());
                assert_eq!(a, b, "shards={shards}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn sharded_tie_introspection_merges_in_seq_order() {
        let mut q = ShardedQueue::new(3);
        q.push_routed(t(10), 'a', 2);
        q.push_routed(t(10), 'b', 0);
        q.push_routed(t(10), 'c', 2);
        q.push_routed(t(10), 'd', 1);
        q.push_routed(t(20), 'z', 0);
        assert_eq!(q.tie_count(), 4);
        let mut seen = Vec::new();
        q.for_each_tie(|&e| seen.push(e));
        assert_eq!(seen, vec!['a', 'b', 'c', 'd']);
        assert_eq!(q.pop_nth(2), Some((t(10), 'c')));
        assert_eq!(q.pop_nth(3), None, "out-of-run index must not pop");
        assert_eq!(q.pop(), Some((t(10), 'a')));
        assert_eq!(q.pop(), Some((t(10), 'b')));
        assert_eq!(q.pop(), Some((t(10), 'd')));
        assert_eq!(q.pop(), Some((t(20), 'z')));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_last_shard_reports_pop_origin() {
        let mut q = ShardedQueue::new(4);
        q.push_routed(t(1), 'a', 3);
        q.push_routed(t(2), 'b', 1);
        q.pop();
        assert_eq!(q.last_shard(), 3);
        q.pop();
        assert_eq!(q.last_shard(), 1);
    }

    #[test]
    fn sharded_driver_snapshot_round_trip() {
        use crate::Snapshotable;
        let mut q: DriverQueue<u64> = DriverQueue::new_sharded(3);
        let mut state = 0x1234_5678u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        for i in 0..500u64 {
            let r = step(&mut state);
            let base = q.now().as_nanos();
            q.push_routed(t(base + r % 1_000), i, (r % 5) as usize);
            if r % 3 == 0 {
                q.pop();
            }
        }
        let mut w = crate::SnapshotWriter::new();
        q.encode(&mut w);
        let bytes = w.finish();
        let mut r = crate::SnapshotReader::new(&bytes);
        let mut restored: DriverQueue<u64> = DriverQueue::decode(&mut r).unwrap();
        assert_eq!(restored.shard_count(), 3);
        assert_eq!(restored.len(), q.len());
        // Drain both twins and in parallel feed identical fresh pushes: the
        // restored queue must be observationally identical, seqs included.
        let mut i = 10_000u64;
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            assert_eq!(q.last_shard(), restored.last_shard());
            if a.is_none() {
                break;
            }
            if i < 10_020 {
                let at = t(q.now().as_nanos() + 7);
                q.push_routed(at, i, 2);
                restored.push_routed(at, i, 2);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the whole queue yields times in nondecreasing order, and
        /// equal-time events preserve insertion order.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &nanos) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(nanos), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((time, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(time >= lt);
                    if time == lt {
                        prop_assert!(idx > lidx, "FIFO violated on tie");
                    }
                }
                last = Some((time, idx));
            }
        }

        /// The queue never loses or duplicates events.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = EventQueue::new();
            for &nanos in &times {
                q.push(SimTime::from_nanos(nanos), nanos);
            }
            let mut popped = Vec::new();
            while let Some((_, v)) = q.pop() {
                popped.push(v);
            }
            let mut expected = times.clone();
            expected.sort_unstable();
            popped.sort_unstable();
            prop_assert_eq!(popped, expected);
        }

        /// The calendar queue and the reference heap agree on tie-group
        /// shape and on `pop_nth` for arbitrary decision sequences — the
        /// contract the model-checking explorer's replays lean on.
        #[test]
        fn calendar_matches_heap_under_pop_nth(
            times in proptest::collection::vec(0u64..2_000, 1..120),
            picks in proptest::collection::vec(0usize..8, 1..120),
        ) {
            let mut cal = EventQueue::new();
            let mut heap = HeapQueue::new();
            for (i, &nanos) in times.iter().enumerate() {
                cal.push(SimTime::from_nanos(nanos), i);
                heap.push(SimTime::from_nanos(nanos), i);
            }
            for &pick in picks.iter().cycle().take(times.len()) {
                prop_assert_eq!(cal.tie_count(), heap.tie_count());
                let mut cal_ties = Vec::new();
                cal.for_each_tie(|&e| cal_ties.push(e));
                let mut heap_ties = Vec::new();
                heap.for_each_tie(|&e| heap_ties.push(e));
                prop_assert_eq!(&cal_ties, &heap_ties, "tie runs diverged");
                // Clamp into the run so every iteration pops something.
                let n = pick.min(cal.tie_count().saturating_sub(1));
                prop_assert_eq!(cal.pop_nth(n), heap.pop_nth(n));
            }
            prop_assert!(cal.is_empty() && heap.is_empty());
        }

        /// The calendar queue and the reference heap agree pop-for-pop on
        /// arbitrary push batches (times spread over several bucket years).
        #[test]
        fn calendar_matches_heap(times in proptest::collection::vec(0u64..5_000_000, 0..300)) {
            let mut cal = EventQueue::new();
            let mut heap = HeapQueue::new();
            for (i, &nanos) in times.iter().enumerate() {
                cal.push(SimTime::from_nanos(nanos), i);
                heap.push(SimTime::from_nanos(nanos), i);
            }
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
