//! The stable, timed event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in time order,
/// breaking ties by insertion order (FIFO).
///
/// The FIFO tie-break is what makes simulations deterministic: two events
/// scheduled for the same instant are always delivered in the order they were
/// scheduled, independent of heap internals.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_nanos(10);
/// q.push(t, 'a');
/// q.push(t, 'b');
/// assert_eq!(q.pop(), Some((t, 'a')));
/// assert_eq!(q.pop(), Some((t, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: SimTime::ZERO }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulation bug.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduled event at {time} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.last_popped, "event queue went backwards");
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 'a');
        assert_eq!(q.pop(), Some((t(10), 'a')));
        q.push(t(10), 'b'); // same instant as "now" is allowed
        q.push(t(15), 'c');
        assert_eq!(q.pop(), Some((t(10), 'b')));
        assert_eq!(q.pop(), Some((t(15), 'c')));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(t(10), ());
        q.pop();
        q.push(t(9), ());
    }

    #[test]
    fn now_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(t(42), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(42)));
        q.pop();
        assert_eq!(q.now(), t(42));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the whole queue yields times in nondecreasing order, and
        /// equal-time events preserve insertion order.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &nanos) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(nanos), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((time, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(time >= lt);
                    if time == lt {
                        prop_assert!(idx > lidx, "FIFO violated on tie");
                    }
                }
                last = Some((time, idx));
            }
        }

        /// The queue never loses or duplicates events.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = EventQueue::new();
            for &nanos in &times {
                q.push(SimTime::from_nanos(nanos), nanos);
            }
            let mut popped = Vec::new();
            while let Some((_, v)) = q.pop() {
                popped.push(v);
            }
            let mut expected = times.clone();
            expected.sort_unstable();
            popped.sort_unstable();
            prop_assert_eq!(popped, expected);
        }
    }
}
