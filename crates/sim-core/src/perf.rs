//! Run-performance telemetry: deterministic counters describing how much
//! work a simulation run performed.
//!
//! [`RunPerf`] is pure bookkeeping over the *virtual* event stream — it
//! counts events, never timestamps them — so it is itself deterministic:
//! twin runs with the same seed must report identical counter blocks, and
//! the determinism regression suite asserts exactly that. Wall-clock
//! measurement (events per second, batch speed-ups) lives in the harness
//! layer behind its `WallClock` shim; wall time never enters sim state.

/// Counters accumulated by a simulator over one run.
///
/// The per-subsystem split mirrors the event vocabulary of the netstack
/// driver loop: radio events dominate healthy runs, so a shifted ratio
/// (e.g. routing events spiking) is itself a useful diagnostic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunPerf {
    /// Total events dispatched by the driver loop.
    pub events_processed: u64,
    /// Radio pipeline events (reception start/end, transmission done).
    pub phy_events: u64,
    /// MAC-layer timer events (backoff, CTS/ACK timeouts, NAV).
    pub mac_events: u64,
    /// Routing events (AODV timers and jittered flood enqueues).
    pub routing_events: u64,
    /// Transport events (TCP timers, flow starts, delayed-ACK timers).
    pub transport_events: u64,
    /// Mobility position-update ticks.
    pub mobility_events: u64,
    /// Periodic DRAI sampling ticks.
    pub sampling_events: u64,
    /// Scripted fault-injection events.
    pub fault_events: u64,
    /// Timers tombstoned before firing (lazy cancellation: the event stays
    /// queued and is discarded as a stale pop at dispatch).
    pub timers_cancelled: u64,
    /// Timer events popped and discarded because their handle was no longer
    /// live. Stale pops are still classified into their subsystem counter
    /// first — the [`RunPerf::classified_total`] invariant covers them —
    /// so this counter is a strict subset, not an extra class.
    pub timers_stale_popped: u64,
    /// Node position writes applied to the channel (mobility steps plus
    /// scripted teleports). Not an event class: each write happens *inside*
    /// a mobility or fault event already counted above.
    pub position_updates: u64,
    /// Total rx/cs adjacency entries changed by those position writes (the
    /// moved node's own rows; peer rows mirror them). The per-move cost the
    /// spatial grid optimises — and a topology-dynamics measure: high churn
    /// means routes break faster than AODV can repair them.
    pub link_churn: u64,
    /// High-water mark of the pending-event queue (the calendar queue's
    /// live length, sampled before every pop).
    pub peak_event_queue: usize,
    /// High-water mark of any node's interface queue.
    pub peak_ifq_depth: usize,
}

impl RunPerf {
    /// Folds another run's counters into this one (used when aggregating a
    /// multi-seed batch): counts add, peaks take the maximum.
    pub fn merge(&mut self, other: &RunPerf) {
        self.events_processed += other.events_processed;
        self.phy_events += other.phy_events;
        self.mac_events += other.mac_events;
        self.routing_events += other.routing_events;
        self.transport_events += other.transport_events;
        self.mobility_events += other.mobility_events;
        self.sampling_events += other.sampling_events;
        self.fault_events += other.fault_events;
        self.timers_cancelled += other.timers_cancelled;
        self.timers_stale_popped += other.timers_stale_popped;
        self.position_updates += other.position_updates;
        self.link_churn += other.link_churn;
        self.peak_event_queue = self.peak_event_queue.max(other.peak_event_queue);
        self.peak_ifq_depth = self.peak_ifq_depth.max(other.peak_ifq_depth);
    }

    /// Sum of the per-subsystem counters. Equals [`RunPerf::events_processed`]
    /// when every dispatched event was classified — including stale timer
    /// pops, which are classified into their subsystem *before* the driver
    /// discards them ([`RunPerf::timers_stale_popped`] only annotates that
    /// subset; it does not participate in this sum).
    pub fn classified_total(&self) -> u64 {
        self.phy_events
            + self.mac_events
            + self.routing_events
            + self.transport_events
            + self.mobility_events
            + self.sampling_events
            + self.fault_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_peaks() {
        let mut a = RunPerf {
            events_processed: 10,
            phy_events: 6,
            mac_events: 2,
            transport_events: 2,
            peak_event_queue: 5,
            peak_ifq_depth: 3,
            ..RunPerf::default()
        };
        let b = RunPerf {
            events_processed: 4,
            phy_events: 4,
            peak_event_queue: 2,
            peak_ifq_depth: 9,
            ..RunPerf::default()
        };
        a.merge(&b);
        assert_eq!(a.events_processed, 14);
        assert_eq!(a.phy_events, 10);
        assert_eq!(a.peak_event_queue, 5);
        assert_eq!(a.peak_ifq_depth, 9);
        assert_eq!(a.classified_total(), 14);
    }

    /// Merging per-shard blocks must be order-insensitive and lossless:
    /// `merge` is associative, commutative, and has the default block as
    /// identity. This is what lets the sharded driver accumulate counters
    /// into per-shard blocks and still report the serial totals exactly,
    /// regardless of how nodes were partitioned.
    #[test]
    fn merge_is_associative_commutative_with_identity() {
        let blocks = [
            RunPerf {
                events_processed: 7,
                phy_events: 4,
                mac_events: 3,
                timers_cancelled: 2,
                position_updates: 5,
                link_churn: 11,
                peak_event_queue: 9,
                peak_ifq_depth: 1,
                ..RunPerf::default()
            },
            RunPerf {
                events_processed: 3,
                mobility_events: 3,
                position_updates: 3,
                peak_event_queue: 4,
                peak_ifq_depth: 6,
                ..RunPerf::default()
            },
            RunPerf {
                events_processed: 10,
                transport_events: 6,
                sampling_events: 4,
                timers_stale_popped: 2,
                peak_event_queue: 12,
                ..RunPerf::default()
            },
        ];
        let fold = |order: &[usize]| {
            let mut acc = RunPerf::default();
            for &i in order {
                acc.merge(&blocks[i]);
            }
            acc
        };
        let left = fold(&[0, 1, 2]);
        // Associativity: ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)).
        let mut bc = blocks[1];
        bc.merge(&blocks[2]);
        let mut a_bc = blocks[0];
        a_bc.merge(&bc);
        assert_eq!(left, a_bc);
        // Commutativity over every permutation.
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), left);
        }
        // Identity.
        let mut id_then = RunPerf::default();
        id_then.merge(&left);
        assert_eq!(id_then, left);
        // Losslessness: the classification invariant survives the merge.
        assert_eq!(left.classified_total(), left.events_processed);
    }

    #[test]
    fn stale_pops_stay_classified() {
        // A stale MAC timer pop is counted as a mac_event (classification
        // happens before the discard) and annotated in timers_stale_popped;
        // the classified_total invariant must keep holding.
        let mut a = RunPerf {
            events_processed: 5,
            mac_events: 3,
            transport_events: 2,
            timers_cancelled: 2,
            timers_stale_popped: 2,
            ..RunPerf::default()
        };
        assert_eq!(a.classified_total(), a.events_processed);
        assert!(a.timers_stale_popped <= a.classified_total());
        let b = RunPerf { timers_cancelled: 1, timers_stale_popped: 1, ..RunPerf::default() };
        a.merge(&b);
        assert_eq!(a.timers_cancelled, 3);
        assert_eq!(a.timers_stale_popped, 3);
    }
}
