//! Conservative parallel-DES support: lookahead bounds, horizon tracking,
//! and the scatter helper for per-shard worker threads.
//!
//! The sharded scheduler ([`crate::ShardedQueue`]) keeps the *pop order*
//! bit-identical to the serial calendar queue by construction (single global
//! sequence counter, min-merge over shard heads), so determinism never
//! depends on threads. What threads buy is wall-clock: work whose effects
//! cannot reach another shard before `now + lookahead` may be *computed* in
//! parallel and committed serially in `(time, seq)` order.
//!
//! The lookahead bound comes from the paper's ns-2-style PHY: two nodes in
//! different shards are at least one transmission disc apart in the cell
//! partition, so the earliest a shard-crossing effect can land is the
//! propagation delay over the 250 m disc plus the minimum MAC turnaround
//! (SIFS). See DESIGN.md §13 for the derivation and the deadlock-freedom
//! argument (horizon broadcasts act as null messages).
//!
//! This module is the only place in the simulation crates licensed by
//! `simlint` to touch `std::thread`; everything else must stay
//! single-threaded so determinism is auditable.

use crate::SimDuration;

/// Propagation delay across the 250 m transmission disc at c ≈ 3×10⁸ m/s.
///
/// 250 m / 3e8 m/s = 833⅓ ns; rounded down so the bound stays conservative.
pub const MIN_PROPAGATION_DELAY: SimDuration = SimDuration::from_nanos(833);

/// Minimum MAC turnaround before a received frame can trigger a response
/// (802.11 SIFS, 10 µs for DSSS PHYs — the value ns-2's 802.11 model uses).
pub const MAC_TURNAROUND: SimDuration = SimDuration::from_micros(10);

/// The conservative lookahead window: no event executed at time `t` in one
/// shard can schedule an event in another shard earlier than
/// `t + lookahead()`.
///
/// Derivation: a cross-shard effect needs at least one frame to cross the
/// 250 m disc ([`MIN_PROPAGATION_DELAY`]) and the receiver to turn it around
/// at the MAC ([`MAC_TURNAROUND`]).
pub const fn lookahead() -> SimDuration {
    SimDuration::from_nanos(MIN_PROPAGATION_DELAY.as_nanos() + MAC_TURNAROUND.as_nanos())
}

/// Per-shard horizon bookkeeping for the conservative protocol.
///
/// Each shard advertises the earliest virtual time at which it could still
/// emit a cross-shard event (its *horizon*). A shard may safely execute
/// events up to `min(other horizons) + lookahead` — the classic
/// Chandy–Misra bound, with the horizon broadcast doubling as the null
/// message that prevents deadlock when a shard has no real traffic to send.
#[derive(Debug, Clone)]
pub struct Horizons {
    horizons: Vec<crate::SimTime>,
}

impl Horizons {
    /// A horizon table for `shards` shards, all starting at time zero.
    pub fn new(shards: usize) -> Self {
        Horizons { horizons: vec![crate::SimTime::ZERO; shards.max(1)] }
    }

    /// Number of shards tracked.
    pub fn shard_count(&self) -> usize {
        self.horizons.len()
    }

    /// Record that `shard` has executed (or promised not to emit before)
    /// virtual time `to`. Horizons never move backwards.
    pub fn advance(&mut self, shard: usize, to: crate::SimTime) {
        let h = &mut self.horizons[shard];
        if to > *h {
            *h = to;
        }
    }

    /// The earliest time any *other* shard might still inject work into
    /// `shard`, i.e. `min(neighbor horizons) + lookahead`. Events strictly
    /// before this bound are safe to execute without further coordination.
    pub fn safe_until(&self, shard: usize) -> crate::SimTime {
        let min_other = self
            .horizons
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != shard)
            .map(|(_, &h)| h)
            .min()
            .unwrap_or(crate::SimTime::MAX);
        min_other.saturating_add(lookahead())
    }
}

/// Run `f(shard)` for every shard and collect the results in shard order.
///
/// When more than one shard is requested *and* the host has more than one
/// core, shards run on scoped worker threads; otherwise the same closures
/// run inline on the caller's thread. Both paths produce identical results
/// for pure `f` — thread count is a performance knob, never a semantic one.
pub fn run_sharded<R, F>(nshards: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let nshards = nshards.max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if nshards > 1 && cores > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nshards)
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move || f(shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(r) => r,
                    // A worker panic is the caller's panic: re-raise the
                    // original payload instead of wrapping it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    } else {
        (0..nshards).map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn lookahead_is_propagation_plus_turnaround() {
        assert_eq!(lookahead().as_nanos(), 833 + 10_000);
        assert!(lookahead() > MIN_PROPAGATION_DELAY);
        assert!(lookahead() > MAC_TURNAROUND);
    }

    #[test]
    fn horizons_advance_monotonically() {
        let mut h = Horizons::new(3);
        h.advance(0, SimTime::from_nanos(100));
        h.advance(0, SimTime::from_nanos(50)); // stale report: ignored
        h.advance(1, SimTime::from_nanos(200));
        // Shard 2 is still at zero, so everyone else's bound is tiny.
        assert_eq!(h.safe_until(0), SimTime::ZERO.saturating_add(lookahead()));
        h.advance(2, SimTime::from_nanos(400));
        // Now shard 2's bound is min(100, 200) + lookahead.
        assert_eq!(h.safe_until(2), SimTime::from_nanos(100).saturating_add(lookahead()));
        // And shard 0's bound is min(200, 400) + lookahead.
        assert_eq!(h.safe_until(0), SimTime::from_nanos(200).saturating_add(lookahead()));
    }

    #[test]
    fn single_shard_is_always_safe() {
        let h = Horizons::new(1);
        assert_eq!(h.safe_until(0), SimTime::MAX);
    }

    #[test]
    fn run_sharded_returns_in_shard_order() {
        let squares = run_sharded(5, |s| s * s);
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let single = run_sharded(1, |s| s + 10);
        assert_eq!(single, vec![10]);
        let zero_clamps = run_sharded(0, |s| s);
        assert_eq!(zero_clamps, vec![0]);
    }
}
