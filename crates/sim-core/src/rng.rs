//! Seeded, reproducible randomness for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator owned by a simulation run.
///
/// All randomness in a simulation (backoff slots, jitter, random loss) must
/// flow through a single `SimRng` so that a run is fully reproducible from its
/// seed.
///
/// # Example
///
/// ```
/// use sim_core::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniformly random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// A uniformly random integer in `[0, cw]` — the 802.11 backoff slot draw.
    pub fn backoff_slot(&mut self, cw: u32) -> u32 {
        self.inner.gen_range(0..=cw)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// A uniformly random float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Derives an independent child generator, e.g. one per node.
    ///
    /// Children seeded from distinct draws of the parent are statistically
    /// independent but still fully determined by the parent's seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn backoff_slot_inclusive() {
        let mut rng = SimRng::new(4);
        let mut saw_max = false;
        for _ in 0..2000 {
            let s = rng.backoff_slot(3);
            assert!(s <= 3);
            saw_max |= s == 3;
        }
        assert!(saw_max, "upper bound must be reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::new(6);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.next_u64(), cb.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::new(1).below(0);
    }
}
