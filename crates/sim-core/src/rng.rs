//! Seeded, reproducible randomness for simulations.
//!
//! Implemented in-repo (xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets) so the
//! workspace has **no** external randomness dependency and every draw is a
//! pure function of the seed. The determinism policy enforced by `simlint`
//! requires all randomness to flow through this type.

/// A deterministic random number generator owned by a simulation run.
///
/// All randomness in a simulation (backoff slots, jitter, random loss) must
/// flow through a single `SimRng` so that a run is fully reproducible from its
/// seed.
///
/// # Example
///
/// ```
/// use sim_core::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s0: u64,
    s1: u64,
    s2: u64,
    s3: u64,
}

/// One SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s0: splitmix64(&mut sm),
            s1: splitmix64(&mut sm),
            s2: splitmix64(&mut sm),
            s3: splitmix64(&mut sm),
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s0.wrapping_add(self.s3).rotate_left(23).wrapping_add(self.s0);
        let t = self.s1 << 17;
        self.s2 ^= self.s0;
        self.s3 ^= self.s1;
        self.s1 ^= self.s2;
        self.s0 ^= self.s3;
        self.s2 ^= t;
        self.s3 = self.s3.rotate_left(45);
        result
    }

    /// A uniformly random integer in `[0, bound)`.
    ///
    /// Uses the widening multiply-shift reduction; the bias is below 2⁻³²
    /// for any bound a simulation uses, far under anything observable.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        ((u64::from(self.next_u64() as u32) * u64::from(bound)) >> 32) as u32
    }

    /// A uniformly random integer in `[0, cw]` — the 802.11 backoff slot draw.
    pub fn backoff_slot(&mut self, cw: u32) -> u32 {
        if cw == u32::MAX {
            return self.next_u64() as u32;
        }
        self.below(cw + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// A uniformly random float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator, e.g. one per node.
    ///
    /// Children seeded from distinct draws of the parent are statistically
    /// independent but still fully determined by the parent's seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

impl crate::Snapshotable for SimRng {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put_u64(self.s0);
        w.put_u64(self.s1);
        w.put_u64(self.s2);
        w.put_u64(self.s3);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        Ok(SimRng { s0: r.take_u64()?, s1: r.take_u64()?, s2: r.take_u64()?, s3: r.take_u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_reaches_both_ends() {
        let mut rng = SimRng::new(8);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..2000 {
            match rng.below(7) {
                0 => lo = true,
                6 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "both ends of the range must be reachable");
    }

    #[test]
    fn backoff_slot_inclusive() {
        let mut rng = SimRng::new(4);
        let mut saw_max = false;
        for _ in 0..2000 {
            let s = rng.backoff_slot(3);
            assert!(s <= 3);
            saw_max |= s == 3;
        }
        assert!(saw_max, "upper bound must be reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::new(6);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SimRng::new(10);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u), "got {u}");
        }
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.next_u64(), cb.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::new(1).below(0);
    }
}
