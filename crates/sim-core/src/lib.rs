//! Deterministic discrete-event simulation core for the TCP Muzha reproduction.
//!
//! This crate provides the engine primitives every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a stable (FIFO-on-tie) calendar queue of timed events,
//!   with [`HeapQueue`] as the reference implementation and [`DriverQueue`]
//!   to pick one at runtime,
//! * [`TimerSlab`] — generation-checked timer handles for lazy cancellation,
//! * [`SmallVec`] — an inline-first vector for hot-path output batches,
//! * [`SimRng`] — a seeded, reproducible random number generator,
//! * [`stats`] — small online statistics helpers (EWMA, time series).
//!
//! The simulation is bit-for-bit deterministic for a given seed: events that
//! fire at the same virtual time are delivered in insertion order. The
//! serial drivers are single-threaded; the conservative parallel driver
//! ([`ShardedQueue`] plus the [`shard`] helpers) keeps the identical pop
//! order by construction and uses threads only as a wall-clock optimization.
//!
//! # Example
//!
//! ```
//! use sim_core::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_micros(), ev), (1_000, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detmap;
mod event;
mod perf;
mod rng;
pub mod shard;
mod smallvec;
pub mod snapshot;
pub mod stats;
mod tie;
mod time;
mod timer;
mod trace;

pub use detmap::{DetMap, DetSet};
pub use event::{
    DriverQueue, EventQueue, HeapQueue, SchedulerKind, ShardedQueue, DEFAULT_SHARDS, MAX_SHARDS,
};
pub use perf::RunPerf;
pub use rng::SimRng;
pub use shard::{lookahead, run_sharded, Horizons, MAC_TURNAROUND, MIN_PROPAGATION_DELAY};
pub use smallvec::SmallVec;
pub use snapshot::{
    SnapError, SnapshotReader, SnapshotWriter, Snapshotable, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use tie::{TieChoice, TieClass, TieKind, TieOrder};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerHandle, TimerSlab};
pub use trace::{twin_run, TraceHash};
