//! Virtual time types: instants ([`SimTime`]) and spans ([`SimDuration`]).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual simulation time, measured in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is a newtype over `u64`, so a simulation can run for roughly
/// 584 years of virtual time before overflowing — far beyond the 30–50 s
/// experiments in the paper.
///
/// # Example
///
/// ```
/// use sim_core::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual simulation time, measured in nanoseconds.
///
/// # Example
///
/// ```
/// use sim_core::SimDuration;
/// let d = SimDuration::from_micros(50) * 3;
/// assert_eq!(d.as_micros(), 150);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span of `secs` seconds from a float.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time needed to serialise `bits` bits onto a link of `bits_per_sec`.
    ///
    /// This is the canonical transmission-delay computation used by the PHY
    /// and MAC layers.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        // Round up: a partially-serialised bit still occupies the medium.
        let nanos = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(nanos as u64)
    }

    /// `self * n`, saturating instead of overflowing.
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Ratio of two spans as a float. Returns 0.0 when `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(secs.is_finite() && secs >= 0.0, "invalid time in seconds: {secs}");
    let nanos = secs * 1e9;
    assert!(nanos <= u64::MAX as f64, "time out of range: {secs}s");
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let u = t + SimDuration::from_millis(500);
        assert_eq!(u - t, SimDuration::from_millis(500));
        assert_eq!(u.saturating_since(t).as_millis(), 500);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(20);
        assert_eq!((d * 3).as_micros(), 60);
        assert_eq!((d / 2).as_micros(), 10);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn tx_time_for_bits() {
        // 1500 bytes at 2 Mbps = 6 ms.
        let d = SimDuration::for_bits(1500 * 8, 2_000_000);
        assert_eq!(d.as_micros(), 6_000);
        // Rounds up.
        let d = SimDuration::for_bits(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::for_bits(8, 0);
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::ZERO - SimDuration::from_nanos(1);
    }

    #[test]
    fn ratio() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(4);
        assert_eq!(a.ratio(b), 0.25);
        assert_eq!(a.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn display() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "0.002000s");
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
