//! Small online statistics helpers shared across the workspace.

use crate::{SimDuration, SimTime};

/// An exponentially weighted moving average over floating-point samples.
///
/// Used by the MAC layer for channel-utilisation tracking and by the Muzha
/// router agent for queue-occupancy smoothing.
///
/// # Example
///
/// ```
/// use sim_core::stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.update(1.0); // first sample initialises the average
/// e.update(0.0);
/// assert_eq!(e.value(), 0.5); // 0.5*0 + 0.5*1
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    initialised: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// `alpha` weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        Ewma { alpha, value: 0.0, initialised: false }
    }

    /// Feeds one sample.
    pub fn update(&mut self, sample: f64) {
        if self.initialised {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        } else {
            self.value = sample;
            self.initialised = true;
        }
    }

    /// Ages the average as if `periods` zero-valued samples had been fed:
    /// the value decays by `(1 - alpha)^periods`. Fractional periods are
    /// allowed. This is ns-2 RED's idle-time correction: while a queue sits
    /// empty no arrivals sample the EWMA, so the estimator must decay the
    /// stale value toward the true (zero) occupancy before the next sample.
    ///
    /// No-op before the first sample or for non-positive `periods`.
    pub fn age(&mut self, periods: f64) {
        if self.initialised && periods > 0.0 {
            self.value *= (1.0 - self.alpha).powf(periods);
        }
    }

    /// The current smoothed value (0.0 before any sample).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been observed.
    pub fn is_initialised(&self) -> bool {
        self.initialised
    }
}

impl crate::Snapshotable for Ewma {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put_f64(self.alpha);
        w.put_f64(self.value);
        w.put_bool(self.initialised);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        let alpha = r.take_f64()?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(crate::SnapError::Invalid("ewma alpha"));
        }
        Ok(Ewma { alpha, value: r.take_f64()?, initialised: r.take_bool()? })
    }
}

/// A time series of `(time, value)` samples, e.g. a congestion-window trace.
///
/// # Example
///
/// ```
/// use sim_core::stats::TimeSeries;
/// use sim_core::SimTime;
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::from_nanos(10), 1.0);
/// ts.record(SimTime::from_nanos(20), 2.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some((SimTime::from_nanos(20), 2.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Times must be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous sample.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(time >= last, "time series must be recorded in order");
        }
        self.samples.push((time, value));
    }

    /// All samples in order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Samples with `start <= time < end`.
    pub fn window(&self, start: SimTime, end: SimTime) -> &[(SimTime, f64)] {
        let lo = self.samples.partition_point(|&(t, _)| t < start);
        let hi = self.samples.partition_point(|&(t, _)| t < end);
        &self.samples[lo..hi]
    }

    /// Time-weighted mean of a step function defined by the samples over
    /// `[start, end)`. Returns `None` if no sample precedes `end`.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start || self.samples.is_empty() {
            return None;
        }
        // Value in force at `start` is the last sample at or before it.
        let first_after = self.samples.partition_point(|&(t, _)| t <= start);
        let mut current = if first_after == 0 {
            // No sample before start; series begins inside the window.
            None
        } else {
            Some(self.samples[first_after - 1].1)
        };
        let mut cursor = start;
        let mut weighted = 0.0;
        let mut covered = SimDuration::ZERO;
        for &(t, v) in &self.samples[first_after..] {
            if t >= end {
                break;
            }
            if let Some(cv) = current {
                let span = t - cursor;
                weighted += cv * span.as_secs_f64();
                covered += span;
            }
            cursor = t;
            current = Some(v);
        }
        if let Some(cv) = current {
            let span = end - cursor;
            weighted += cv * span.as_secs_f64();
            covered += span;
        }
        if covered == SimDuration::ZERO {
            None
        } else {
            Some(weighted / covered.as_secs_f64())
        }
    }
}

impl crate::Snapshotable for TimeSeries {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put(&self.samples);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        let samples: Vec<(SimTime, f64)> = r.get()?;
        if samples.windows(2).any(|p| matches!(p, [a, b] if b.0 < a.0)) {
            return Err(crate::SnapError::Invalid("time series out of order"));
        }
        Ok(TimeSeries { samples })
    }
}

/// Jain's fairness index over per-flow allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Returns 1.0 for an empty or all-zero input by convention (nothing is
/// being shared unfairly).
///
/// # Example
///
/// ```
/// use sim_core::stats::jain_fairness_index;
/// assert_eq!(jain_fairness_index(&[1.0, 1.0, 1.0]), 1.0);
/// assert!((jain_fairness_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_fairness_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn ewma_first_sample_initialises() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_initialised());
        e.update(10.0);
        assert_eq!(e.value(), 10.0);
        assert!(e.is_initialised());
    }

    #[test]
    fn ewma_converges_toward_constant() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.update(5.0);
        }
        assert!((e.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_age_decays_toward_zero() {
        let mut e = Ewma::new(0.5);
        e.update(8.0);
        e.age(3.0);
        assert!((e.value() - 1.0).abs() < 1e-12, "8 * 0.5^3 = 1");
        // Aging by many periods drives the value to (near) zero, exactly as
        // feeding that many zero samples would.
        e.age(60.0);
        assert!(e.value() < 1e-12);
    }

    #[test]
    fn ewma_age_is_noop_before_init_and_for_nonpositive_periods() {
        let mut e = Ewma::new(0.3);
        e.age(10.0);
        assert_eq!(e.value(), 0.0);
        assert!(!e.is_initialised());
        e.update(4.0);
        e.age(0.0);
        e.age(-5.0);
        assert_eq!(e.value(), 4.0);
    }

    #[test]
    fn series_window_selects_half_open_range() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.record(t(i * 10), i as f64);
        }
        let w = ts.window(t(20), t(50));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (t(20), 2.0));
        assert_eq!(w[2], (t(40), 4.0));
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(t(10), 0.0);
        ts.record(t(5), 0.0);
    }

    #[test]
    fn time_weighted_mean_of_step_function() {
        let mut ts = TimeSeries::new();
        ts.record(t(0), 2.0);
        ts.record(t(100), 4.0);
        // 2.0 for 100ns then 4.0 for 100ns => mean 3.0
        let m = ts.time_weighted_mean(t(0), t(200)).unwrap();
        assert!((m - 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_window_starting_mid_series() {
        let mut ts = TimeSeries::new();
        ts.record(t(0), 2.0);
        ts.record(t(100), 4.0);
        let m = ts.time_weighted_mean(t(50), t(150)).unwrap();
        assert!((m - 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_empty_cases() {
        let ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(t(0), t(10)), None);
        let mut ts = TimeSeries::new();
        ts.record(t(100), 1.0);
        // Window entirely before the first sample.
        assert_eq!(ts.time_weighted_mean(t(0), t(50)), None);
    }

    #[test]
    fn jain_properties() {
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness_index(&[3.0]), 1.0);
        let idx = jain_fairness_index(&[1.0, 1.0, 1.0, 1.0]);
        assert!((idx - 1.0).abs() < 1e-12);
        let skew = jain_fairness_index(&[10.0, 1.0]);
        assert!(skew < 0.65);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Jain's index is always in (0, 1] for nonnegative inputs.
        #[test]
        fn jain_bounded(xs in proptest::collection::vec(0.0f64..1e6, 1..32)) {
            let idx = jain_fairness_index(&xs);
            prop_assert!(idx > 0.0 && idx <= 1.0 + 1e-12, "idx = {idx}");
        }

        /// Jain's index is scale-invariant.
        #[test]
        fn jain_scale_invariant(xs in proptest::collection::vec(0.1f64..1e3, 1..16), k in 0.1f64..100.0) {
            let a = jain_fairness_index(&xs);
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let b = jain_fairness_index(&scaled);
            prop_assert!((a - b).abs() < 1e-9);
        }

        /// EWMA stays within the range of its inputs.
        #[test]
        fn ewma_bounded(samples in proptest::collection::vec(-100.0f64..100.0, 1..64), alpha in 0.01f64..1.0) {
            let mut e = Ewma::new(alpha);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &s in &samples {
                e.update(s);
                lo = lo.min(s);
                hi = hi.max(s);
                prop_assert!(e.value() >= lo - 1e-9 && e.value() <= hi + 1e-9);
            }
        }
    }
}
