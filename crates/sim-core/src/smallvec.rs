//! An inline-first vector for hot-path output batches.
//!
//! The MAC and AODV layers return a handful of outputs (usually 0–3) from
//! every event-handler call; allocating a `Vec` for each was measurable on
//! the driver loop. [`SmallVec`] keeps up to `N` elements inline on the
//! stack and only spills to a heap `Vec` beyond that.
//!
//! The workspace forbids `unsafe`, so the inline buffer is `[Option<T>; N]`
//! rather than uninitialised memory. That rules out `Deref<Target = [T]>`
//! (inline storage is not contiguous `T`s); iteration goes through
//! [`SmallVec::iter`] / `IntoIterator` instead, which is all the driver
//! loop's `for` consumption needs.

use std::fmt;

/// A vector storing up to `N` elements inline before spilling to the heap.
#[derive(Clone)]
pub struct SmallVec<T, const N: usize> {
    repr: Repr<T, N>,
}

#[derive(Clone)]
enum Repr<T, const N: usize> {
    Inline { buf: [Option<T>; N], len: usize },
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no allocation).
    pub fn new() -> Self {
        SmallVec { repr: Repr::Inline { buf: std::array::from_fn(|_| None), len: 0 } }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements have spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap on overflow of the inline
    /// buffer.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend(buf.iter_mut().filter_map(Option::take));
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        match &self.repr {
            Repr::Inline { buf, len } => {
                if index < *len {
                    buf[index].as_ref()
                } else {
                    None
                }
            }
            Repr::Heap(v) => v.get(index),
        }
    }

    /// Iterates over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (inline, heap): (&[Option<T>], &[T]) = match &self.repr {
            Repr::Inline { buf, len } => (&buf[..*len], &[]),
            Repr::Heap(v) => (&[], v.as_slice()),
        };
        inline.iter().filter_map(Option::as_ref).chain(heap.iter())
    }

    /// Moves the elements into a plain `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        match self.repr {
            Repr::Inline { buf, len } => buf.into_iter().take(len).flatten().collect(),
            Repr::Heap(v) => v,
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<T, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        SmallVec { repr: Repr::Heap(v) }
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        match self.repr {
            Repr::Inline { buf, len } => IntoIter::Inline { iter: buf.into_iter(), remaining: len },
            Repr::Heap(v) => IntoIter::Heap(v.into_iter()),
        }
    }
}

/// Owning iterator over a [`SmallVec`]'s elements.
#[derive(Debug)]
pub enum IntoIter<T, const N: usize> {
    /// Draining the inline buffer.
    Inline {
        /// Underlying array iterator (trailing `None`s past `remaining`).
        iter: std::array::IntoIter<Option<T>, N>,
        /// Elements left to yield.
        remaining: usize,
    },
    /// Draining the spilled heap vector.
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            IntoIter::Inline { iter, remaining } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                iter.next().flatten()
            }
            IntoIter::Heap(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            IntoIter::Inline { remaining, .. } => *remaining,
            IntoIter::Heap(iter) => iter.len(),
        };
        (n, Some(n))
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_preserving_order() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v.into_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn into_iter_matches_iter() {
        for count in [0usize, 3, 4, 5, 9] {
            let mut v: SmallVec<usize, 4> = SmallVec::new();
            v.extend(0..count);
            let borrowed: Vec<usize> = v.iter().copied().collect();
            let hint = v.clone().into_iter().size_hint();
            assert_eq!(hint, (count, Some(count)));
            let owned: Vec<usize> = v.into_iter().collect();
            assert_eq!(borrowed, owned);
            assert_eq!(owned, (0..count).collect::<Vec<_>>());
        }
    }

    #[test]
    fn get_and_eq() {
        let mut a: SmallVec<u8, 2> = SmallVec::new();
        a.extend([1, 2, 3]);
        let b: SmallVec<u8, 2> = vec![1, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(a.get(0), Some(&1));
        assert_eq!(a.get(2), Some(&3));
        assert_eq!(a.get(3), None);
        let c: SmallVec<u8, 2> = vec![1, 2].into();
        assert_ne!(a, c);
    }

    #[test]
    fn from_iterator_collects() {
        let v: SmallVec<u32, 4> = (0..3).collect();
        assert!(!v.spilled());
        assert_eq!(v.len(), 3);
    }
}
