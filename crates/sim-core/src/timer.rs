//! Generation-checked timer handles for lazy cancellation.
//!
//! Protocol layers schedule timers as plain events; ns-2 (and this
//! simulator) never removes a cancelled timer from the event queue — the
//! event fires anyway and must be recognised as stale and dropped. Before
//! this module each layer improvised that recognition (an `Option` compare
//! here, a linear scan there). [`TimerSlab`] centralises it: scheduling
//! returns a [`TimerHandle`] carrying a slot and a generation, cancelling or
//! firing the handle bumps the slot's generation, and a popped timer event
//! is live iff its handle's generation still matches — an O(1) tombstone
//! check the driver loop performs at its dispatch choke point.
//!
//! Slots are recycled through a free list, but a `(slot, generation)` pair
//! is never reused: every schedule bumps the slot's generation, so a stale
//! handle can never collide with a later timer.

/// A generation-checked reference to one scheduled timer.
///
/// Obtained from [`TimerSlab::schedule`]; embedded (inside a layer's timer
/// id) in the event that will fire it. The handle stays valid until the
/// timer is cancelled or fired, after which [`TimerSlab::is_live`] returns
/// `false` forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    slot: u32,
    generation: u64,
}

/// The slab tracking which timer handles are still live.
///
/// Deterministic by construction: slot assignment depends only on the
/// sequence of schedule/cancel/fire calls, never on addresses or hashing.
#[derive(Clone, Debug, Default)]
pub struct TimerSlab {
    /// Current generation per slot. Odd while the slot's timer is live,
    /// even while the slot is free.
    generations: Vec<u64>,
    /// Free slots, reused LIFO.
    free: Vec<u32>,
    scheduled: u64,
    cancelled: u64,
}

impl TimerSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        TimerSlab::default()
    }

    /// Registers a new live timer and returns its handle.
    pub fn schedule(&mut self) -> TimerHandle {
        self.scheduled += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        let slot_gen = &mut self.generations[slot as usize];
        *slot_gen += 1; // even (free) -> odd (live)
        TimerHandle { slot, generation: *slot_gen }
    }

    /// Whether `handle` refers to a timer that has been neither cancelled
    /// nor fired.
    pub fn is_live(&self, handle: TimerHandle) -> bool {
        self.generations.get(handle.slot as usize) == Some(&handle.generation)
    }

    /// Tombstones `handle` without firing it. Returns whether the handle
    /// was live (idempotent: cancelling twice is a no-op).
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let retired = self.retire(handle);
        if retired {
            self.cancelled += 1;
        }
        retired
    }

    /// Consumes `handle` as fired. Returns whether the handle was live;
    /// firing a cancelled handle is a no-op (and how stale pops surface).
    pub fn fire(&mut self, handle: TimerHandle) -> bool {
        self.retire(handle)
    }

    fn retire(&mut self, handle: TimerHandle) -> bool {
        match self.generations.get_mut(handle.slot as usize) {
            Some(slot_gen) if *slot_gen == handle.generation => {
                *slot_gen += 1; // odd (live) -> even (free)
                self.free.push(handle.slot);
                true
            }
            _ => false,
        }
    }

    /// Number of currently live timers.
    pub fn live(&self) -> usize {
        self.generations.len() - self.free.len()
    }

    /// Total timers ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total timers cancelled before firing (the lazy tombstones a driver
    /// will later discard as stale pops).
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled
    }
}

impl crate::Snapshotable for TimerHandle {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put_u32(self.slot);
        w.put_u64(self.generation);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        Ok(TimerHandle { slot: r.take_u32()?, generation: r.take_u64()? })
    }
}

impl crate::Snapshotable for TimerSlab {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put(&self.generations);
        w.put(&self.free);
        w.put_u64(self.scheduled);
        w.put_u64(self.cancelled);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        let generations: Vec<u64> = r.get()?;
        let free: Vec<u32> = r.get()?;
        // Free-list entries must point at even-generation (free) slots, or a
        // corrupted snapshot could hand out a slot twice.
        for &slot in &free {
            match generations.get(slot as usize) {
                Some(g) if g % 2 == 0 => {}
                _ => return Err(crate::SnapError::Invalid("timer free-list slot")),
            }
        }
        Ok(TimerSlab { generations, free, scheduled: r.take_u64()?, cancelled: r.take_u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fire_lifecycle() {
        let mut slab = TimerSlab::new();
        let h = slab.schedule();
        assert!(slab.is_live(h));
        assert_eq!(slab.live(), 1);
        assert!(slab.fire(h));
        assert!(!slab.is_live(h));
        assert!(!slab.fire(h), "second fire is stale");
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.cancelled_count(), 0);
    }

    #[test]
    fn cancel_tombstones_and_counts() {
        let mut slab = TimerSlab::new();
        let h = slab.schedule();
        assert!(slab.cancel(h));
        assert!(!slab.is_live(h));
        assert!(!slab.cancel(h), "cancel is idempotent");
        assert!(!slab.fire(h), "a cancelled timer pops stale");
        assert_eq!(slab.cancelled_count(), 1);
        assert_eq!(slab.scheduled_count(), 1);
    }

    #[test]
    fn recycled_slots_never_resurrect_old_handles() {
        let mut slab = TimerSlab::new();
        let a = slab.schedule();
        slab.cancel(a);
        let b = slab.schedule(); // reuses slot 0 at a later generation
        assert_ne!(a, b);
        assert!(!slab.is_live(a), "old handle must stay dead");
        assert!(slab.is_live(b));
        assert!(slab.fire(b));
        assert!(!slab.is_live(b));
    }

    /// Builds a slab whose only slot already sits at `generation` — the
    /// state a very long run reaches after ~`generation` schedule/retire
    /// cycles — without paying for the cycles.
    fn slab_at_generation(generation: u64) -> TimerSlab {
        assert!(generation.is_multiple_of(2), "a free slot has an even generation");
        TimerSlab {
            generations: vec![generation],
            free: vec![0],
            scheduled: generation / 2,
            cancelled: 0,
        }
    }

    #[test]
    fn generation_past_u32_max_never_aliases() {
        // Generations are u64 precisely so that a slot recycled more than
        // u32::MAX times cannot wrap back onto a stale handle's generation.
        // Start a slot just below the u32 boundary and drive it across it.
        let mut slab = slab_at_generation(u64::from(u32::MAX) - 1);
        let old = slab.schedule(); // generation u32::MAX (odd, live)
        assert!(slab.is_live(old));
        assert!(slab.cancel(old));
        let next = slab.schedule(); // generation u32::MAX + 1 wraps in u32, not u64
        assert!(!slab.is_live(old), "stale handle revalidated across u32::MAX");
        assert!(slab.is_live(next));
        assert_ne!(old, next);
        assert!(!slab.fire(old), "stale fire must stay a no-op");
        assert!(slab.fire(next));
    }

    #[test]
    fn many_interleaved_timers() {
        let mut slab = TimerSlab::new();
        let mut live = Vec::new();
        for round in 0..100u64 {
            let h = slab.schedule();
            live.push(h);
            if round % 3 == 0 {
                let victim = live.remove((round as usize / 3) % live.len());
                assert!(slab.cancel(victim));
            }
        }
        assert_eq!(slab.live(), live.len());
        for h in &live {
            assert!(slab.is_live(*h));
            assert!(slab.fire(*h));
        }
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.scheduled_count(), 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Drive one slot through schedule/retire cycles that straddle
        /// u32::MAX-adjacent generation counts (seeded high so the boundary
        /// is actually crossed): no handle retired along the way may ever
        /// revalidate, no matter how the cycle count lands relative to the
        /// wrap point. Would fail if generations were compared modulo 2^32.
        #[test]
        fn stale_handles_stay_dead_across_u32_boundary(
            offset in 0u64..8,
            cycles in 1usize..24,
            cancel_mask in 0u32..(1 << 24),
        ) {
            let start = (u64::from(u32::MAX) - 8 + offset) & !1; // even: free slot
            let mut slab = TimerSlab {
                generations: vec![start],
                free: vec![0],
                scheduled: start / 2,
                cancelled: 0,
            };
            let mut retired: Vec<TimerHandle> = Vec::new();
            for round in 0..cycles {
                let h = slab.schedule();
                prop_assert!(slab.is_live(h));
                for old in &retired {
                    prop_assert!(!slab.is_live(*old),
                        "handle {old:?} revalidated at round {round}");
                    prop_assert_ne!(*old, h, "recycled slot aliased a stale handle");
                }
                if cancel_mask & (1 << round) != 0 {
                    prop_assert!(slab.cancel(h));
                } else {
                    prop_assert!(slab.fire(h));
                }
                retired.push(h);
                for old in &retired {
                    prop_assert!(!slab.fire(*old), "stale fire succeeded");
                }
            }
            prop_assert_eq!(slab.live(), 0);
        }
    }
}
