//! Deterministically ordered map/set wrappers.
//!
//! `std::collections::HashMap`/`HashSet` use a per-process random hash seed
//! (`RandomState`), so their iteration order differs between runs. Any such
//! iteration feeding the event loop silently breaks bit-for-bit replay — the
//! property every figure reproduced from the paper depends on. The `simlint`
//! analyzer therefore forbids hash containers in simulation-state crates;
//! these wrappers are the sanctioned replacement.
//!
//! Both are thin facades over `BTreeMap`/`BTreeSet`: iteration order is the
//! key order, identical on every run and every platform. The API mirrors the
//! `HashMap` subset the simulator uses, so call sites migrate verbatim.
//!
//! # Example
//!
//! ```
//! use sim_core::DetMap;
//! let mut m = DetMap::new();
//! m.insert(3, "c");
//! m.insert(1, "a");
//! let keys: Vec<i32> = m.keys().copied().collect();
//! assert_eq!(keys, [1, 3]); // always sorted, never hash order
//! ```

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Index;

/// A map with deterministic (key-sorted) iteration order.
#[derive(Clone, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetMap { inner: BTreeMap::new() }
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Borrows the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutably borrows the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// The entry API, for insert-or-update call sites.
    pub fn entry(&mut self, key: K) -> btree_map::Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterates with mutable values, in ascending key order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Iterates mutable values in ascending key order.
    pub fn values_mut(&mut self) -> btree_map::ValuesMut<'_, K, V> {
        self.inner.values_mut()
    }

    /// Keeps only the entries for which `f` returns true.
    pub fn retain(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        self.inner.retain(f);
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K: Ord, V> Index<&K> for DetMap<K, V> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.inner.get(key).expect("no entry found for key")
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap { inner: BTreeMap::from_iter(iter) }
    }
}

impl<K: Ord, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a, K, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, K, V> IntoIterator for &'a mut DetMap<K, V> {
    type Item = (&'a K, &'a mut V);
    type IntoIter = btree_map::IterMut<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

impl<K, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A set with deterministic (sorted) iteration order.
#[derive(Clone, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet { inner: BTreeSet::new() }
    }

    /// Inserts `value`; returns whether it was newly added.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }

    /// Keeps only the elements for which `f` returns true.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.inner.retain(f);
    }
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet { inner: BTreeSet::from_iter(iter) }
    }
}

impl<T: Ord> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a, T> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iteration_is_key_sorted() {
        let mut m = DetMap::new();
        for k in [5u32, 1, 9, 3, 7] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, [1, 3, 5, 7, 9]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, [10, 30, 50, 70, 90]);
    }

    #[test]
    fn map_basic_ops() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get(&"a"), Some(&2));
        assert!(m.contains_key(&"a"));
        assert_eq!(m[&"a"], 2);
        *m.get_mut(&"a").unwrap() += 1;
        assert_eq!(m.remove(&"a"), Some(3));
        assert_eq!(m.remove(&"a"), None);
        m.entry("b").or_insert(7);
        *m.entry("b").or_insert(0) += 1;
        assert_eq!(m[&"b"], 8);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn map_retain_and_collect() {
        let mut m: DetMap<u8, u8> = (0..10).map(|i| (i, i)).collect();
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        let pairs: Vec<(u8, u8)> = m.into_iter().collect();
        assert_eq!(pairs, [(0, 0), (2, 2), (4, 4), (6, 6), (8, 8)]);
    }

    #[test]
    fn set_iteration_is_sorted() {
        let s: DetSet<u32> = [5, 1, 9, 3].into_iter().collect();
        let elems: Vec<u32> = s.iter().copied().collect();
        assert_eq!(elems, [1, 3, 5, 9]);
    }

    #[test]
    fn set_basic_ops() {
        let mut s = DetSet::new();
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.contains(&2));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&2));
        assert!(!s.remove(&2));
        assert!(s.is_empty());
    }
}
