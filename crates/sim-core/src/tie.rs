//! Tie-order decision hooks: the replay substrate of the model checker.
//!
//! The queues in [`crate::event`] break same-instant ties FIFO — that is the
//! determinism contract. A [`TieOrder`] installed on a driver overrides that
//! break with a *decision vector*: at the i-th tie group encountered inside
//! its window, the driver pops the `decisions[i]`-th tied event instead of
//! the FIFO head (beyond the vector's end every choice defaults to 0, i.e.
//! plain FIFO). Each consulted group is recorded as a [`TieChoice`] carrying
//! the [`TieClass`] fingerprints of its members, so an explorer can replay a
//! prefix, read the log, and enumerate the untried alternatives — branching
//! without any state snapshot, because the simulation itself is
//! deterministic given the seed and the decision vector.
//!
//! `sim_core` stays agnostic about what the events *are*: the driver
//! classifies its own event type into [`TieClass`] fingerprints, and the
//! independence relation over those fingerprints lives with the explorer
//! (`faultline::mc`).

use crate::SimTime;

/// Coarse behavioural class of one tied event, as declared by the driver.
///
/// The classes only need to be precise enough for a *sound* independence
/// relation: when in doubt a driver must use a more conservative (more
/// conflicting) class, never a less conflicting one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TieKind {
    /// Pure listening bookkeeping: notes a signal arriving at the owning
    /// node, touches only that node's state, never draws shared RNG, never
    /// transmits and never schedules work for other nodes.
    RxListen,
    /// General node work: may transmit, draw the shared RNG stream, or touch
    /// a shared queue. Conflicts with every other `NodeWork`/`ChannelWrite`.
    NodeWork,
    /// Writes shared channel state (e.g. mobility position updates).
    ChannelWrite,
    /// Global events (sampling ticks, scripted faults, flow starts):
    /// conflict with everything.
    Global,
}

/// Scheduling fingerprint of one pending event inside a tie group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TieClass {
    /// Index of the owning node, or `None` for global events.
    pub node: Option<u32>,
    /// Behavioural class.
    pub kind: TieKind,
}

impl TieClass {
    /// A fingerprint owned by node `node`.
    pub fn node(node: u32, kind: TieKind) -> Self {
        TieClass { node: Some(node), kind }
    }

    /// A global fingerprint (conflicts with everything).
    pub fn global() -> Self {
        TieClass { node: None, kind: TieKind::Global }
    }
}

/// One recorded tie-break decision: the group the driver saw (FIFO order)
/// and the index it was told to pop first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TieChoice {
    /// Virtual time of the tie group.
    pub at: SimTime,
    /// Fingerprints of the tied events, in FIFO order.
    pub group: Vec<TieClass>,
    /// Index into `group` that was popped.
    pub chosen: usize,
}

/// A prescribed tie-break decision vector plus the log of choices actually
/// taken — install on a driver with `Simulator::install_tie_order`, run,
/// then read the log back with [`TieOrder::choices`].
///
/// Semantics of [`TieOrder::choose`]:
/// * decisions are consumed in encounter order; past the end of the vector
///   the choice is 0 (FIFO), so an empty vector reproduces the plain run;
/// * a prescribed index outside the observed group is clamped to 0 and
///   flagged via [`TieOrder::diverged`] — it means the replayed prefix did
///   not reproduce the recording, which a correct explorer never does;
/// * only ties inside the optional window (inclusive) are choice points;
///   outside it the driver must not call `choose` at all.
#[derive(Clone, Debug, Default)]
pub struct TieOrder {
    decisions: Vec<usize>,
    cursor: usize,
    window: Option<(SimTime, SimTime)>,
    diverged: bool,
    choices: Vec<TieChoice>,
}

impl TieOrder {
    /// A tie order prescribing `decisions`, with no window restriction.
    pub fn new(decisions: Vec<usize>) -> Self {
        TieOrder { decisions, ..TieOrder::default() }
    }

    /// Restricts choice points to ties with `start <= time <= end`.
    pub fn with_window(mut self, start: SimTime, end: SimTime) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Whether a tie at `time` is a choice point under this order's window.
    pub fn covers(&self, time: SimTime) -> bool {
        self.window.is_none_or(|(start, end)| time >= start && time <= end)
    }

    /// Consumes the next decision for a tie `group` (FIFO fingerprints) at
    /// virtual time `at`, records the choice, and returns the index to pop.
    pub fn choose(&mut self, at: SimTime, group: Vec<TieClass>) -> usize {
        let prescribed = self.decisions.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        let chosen = if prescribed < group.len() {
            prescribed
        } else {
            self.diverged = true;
            0
        };
        self.choices.push(TieChoice { at, group, chosen });
        chosen
    }

    /// The prescribed decision vector.
    pub fn decisions(&self) -> &[usize] {
        &self.decisions
    }

    /// The choices taken so far, in encounter order.
    pub fn choices(&self) -> &[TieChoice] {
        &self.choices
    }

    /// Consumes the order, returning its choice log.
    pub fn into_choices(self) -> Vec<TieChoice> {
        self.choices
    }

    /// Number of choice points encountered so far.
    pub fn choice_points(&self) -> usize {
        self.choices.len()
    }

    /// True if some prescribed decision did not fit its observed group —
    /// the replay diverged from the recording that produced the vector.
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    fn group(n: usize) -> Vec<TieClass> {
        (0..n as u32).map(|i| TieClass::node(i, TieKind::NodeWork)).collect()
    }

    #[test]
    fn empty_vector_is_fifo() {
        let mut order = TieOrder::default();
        assert_eq!(order.choose(t(5), group(3)), 0);
        assert_eq!(order.choose(t(5), group(2)), 0);
        assert!(!order.diverged());
        assert_eq!(order.choice_points(), 2);
    }

    #[test]
    fn decisions_are_consumed_in_order_then_default_to_fifo() {
        let mut order = TieOrder::new(vec![2, 1]);
        assert_eq!(order.choose(t(1), group(3)), 2);
        assert_eq!(order.choose(t(1), group(2)), 1);
        assert_eq!(order.choose(t(2), group(4)), 0, "past the vector end: FIFO");
        assert!(!order.diverged());
        let log = order.into_choices();
        assert_eq!(log.iter().map(|c| c.chosen).collect::<Vec<_>>(), vec![2, 1, 0]);
        assert_eq!(log.iter().map(|c| c.group.len()).collect::<Vec<_>>(), vec![3, 2, 4]);
    }

    #[test]
    fn out_of_range_decision_clamps_and_flags_divergence() {
        let mut order = TieOrder::new(vec![5]);
        assert_eq!(order.choose(t(1), group(2)), 0);
        assert!(order.diverged());
    }

    #[test]
    fn window_gates_choice_points() {
        let order = TieOrder::default().with_window(t(10), t(20));
        assert!(!order.covers(t(9)));
        assert!(order.covers(t(10)));
        assert!(order.covers(t(20)));
        assert!(!order.covers(t(21)));
        assert!(TieOrder::default().covers(t(9)), "no window covers everything");
    }
}
