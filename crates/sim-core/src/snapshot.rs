//! Versioned, std-only snapshot codec: full simulator state to bytes and
//! back, bit-identically.
//!
//! The format is deliberately primitive — little-endian fixed-width
//! integers, `u64` length prefixes, one tag byte per enum/option — so the
//! encoder and decoder can be audited side by side and no external
//! serialisation dependency enters the workspace. Floats travel as raw IEEE
//! bit patterns ([`f64::to_bits`]): restoring a run must reproduce *bit*
//! equality, including signed zeros and NaN payloads, or twin traces would
//! diverge after a resume.
//!
//! A complete snapshot starts with an 8-byte magic and a `u16` version
//! (see [`SnapshotWriter::with_header`] / [`SnapshotReader::with_header`]).
//! Decoding is total: truncated input, unknown tags, malformed UTF-8 or
//! trailing bytes yield a clean [`SnapError`], never a panic and never a
//! silently defaulted field. Compatibility rule: the version bumps on *any*
//! layout change — there is no in-place migration, a simulator only
//! restores snapshots taken by its own format version.
//!
//! Layer crates implement [`Snapshotable`] for their own state structs
//! (private fields stay private); composite state concatenates its fields
//! in declaration order, which the round-trip property tests pin.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use crate::{DetMap, DetSet, SimDuration, SimTime};

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MUZSNAP0";

/// Current snapshot format version. Bumps on any layout change; decoders
/// reject every other version outright (no migration).
pub const SNAPSHOT_VERSION: u16 = 2;

/// Why a snapshot failed to decode. Always an error value, never a panic:
/// snapshots cross process boundaries and must be treated as untrusted
/// input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the field being read.
    Truncated,
    /// The first 8 bytes were not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u16),
    /// Decoding finished with bytes left over — the snapshot and the
    /// decoder disagree about the layout.
    TrailingBytes(usize),
    /// A field held a value outside its domain (bad enum tag, non-boolean
    /// byte, malformed UTF-8, ...). Names the offending field kind.
    Invalid(&'static str),
    /// The snapshot is well-formed but belongs to a different simulation
    /// (config fingerprint, node count or flow table mismatch).
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated mid-field"),
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the last field")
            }
            SnapError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapError::Mismatch(why) => write!(f, "snapshot mismatch: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink for encoding snapshot state.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer with no header (for nested or test encodings).
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// A writer primed with the snapshot magic and format version.
    pub fn with_header() -> Self {
        let mut w = SnapshotWriter::default();
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.put_u16(SNAPSHOT_VERSION);
        w
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` (the format is 64-bit regardless
    /// of host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` as its raw bit pattern — exact, including NaN
    /// payloads and signed zero.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a string (length-prefixed UTF-8).
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Encodes any [`Snapshotable`] value.
    pub fn put<T: Snapshotable>(&mut self, v: &T) {
        v.encode(self);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over snapshot bytes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `buf` with no header expectation.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// A reader that first validates the magic and format version.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`] or [`SnapError::UnsupportedVersion`] when the
    /// header does not match this build's format.
    pub fn with_header(buf: &'a [u8]) -> Result<Self, SnapError> {
        let mut r = SnapshotReader::new(buf);
        let magic = r.take_raw(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.take_u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, SnapError> {
        let raw = self.take_raw(2)?;
        let mut bytes = [0u8; 2];
        bytes.copy_from_slice(raw);
        Ok(u16::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let raw = self.take_raw(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(raw);
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let raw = self.take_raw(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a `u64` and narrows it to the host `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapError::Invalid("usize out of range"))
    }

    /// Reads a bool; any byte other than 0 or 1 is invalid.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool byte")),
        }
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.take_usize()?;
        self.take_raw(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, SnapError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid("utf-8 string"))
    }

    /// Decodes any [`Snapshotable`] value.
    pub fn get<T: Snapshotable>(&mut self) -> Result<T, SnapError> {
        T::decode(self)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts exact consumption: every decode must account for every byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when input remains.
    pub fn finish(self) -> Result<(), SnapError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(SnapError::TrailingBytes(n)),
        }
    }
}

/// State that can round-trip through the snapshot codec.
///
/// The contract, pinned by the codec fuzz tests: `decode(encode(x)) == x`
/// observationally (bit-identical continued behaviour), and `decode` of
/// truncated or corrupted bytes returns an error — it never panics and
/// never invents a default.
pub trait Snapshotable: Sized {
    /// Appends this value's state to `w`.
    fn encode(&self, w: &mut SnapshotWriter);
    /// Reads a value back from `r`, consuming exactly what `encode` wrote.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on truncated or out-of-domain input.
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError>;
}

/// Decoded collections reserve at most this many elements up front, so a
/// corrupt length prefix cannot force a huge allocation before the
/// (inevitable) truncation error surfaces.
const MAX_PREALLOC: usize = 4096;

macro_rules! snap_uint {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Snapshotable for $ty {
            fn encode(&self, w: &mut SnapshotWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
                r.$take()
            }
        }
    };
}

snap_uint!(u8, put_u8, take_u8);
snap_uint!(u16, put_u16, take_u16);
snap_uint!(u32, put_u32, take_u32);
snap_uint!(u64, put_u64, take_u64);
snap_uint!(usize, put_usize, take_usize);
snap_uint!(bool, put_bool, take_bool);
snap_uint!(f64, put_f64, take_f64);

impl Snapshotable for String {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.take_str()
    }
}

impl Snapshotable for SimTime {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(SimTime::from_nanos(r.take_u64()?))
    }
}

impl Snapshotable for SimDuration {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(SimDuration::from_nanos(r.take_u64()?))
    }
}

impl<T: Snapshotable> Snapshotable for Option<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapError::Invalid("option tag")),
        }
    }
}

impl<T: Snapshotable> Snapshotable for Vec<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshotable> Snapshotable for VecDeque<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = VecDeque::with_capacity(len.min(MAX_PREALLOC));
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshotable + Ord> Snapshotable for BTreeSet<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshotable + Ord, V: Snapshotable> Snapshotable for BTreeMap<K, V> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Snapshotable + Ord, V: Snapshotable> Snapshotable for DetMap<K, V> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for (k, v) in self.iter() {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = DetMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snapshotable + Ord> Snapshotable for DetSet<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self.iter() {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_usize()?;
        let mut out = DetSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshotable> Snapshotable for Rc<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.as_ref().encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(Rc::new(T::decode(r)?))
    }
}

impl<A: Snapshotable, B: Snapshotable> Snapshotable for (A, B) {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        Ok((a, b))
    }
}

impl<A: Snapshotable, B: Snapshotable, C: Snapshotable> Snapshotable for (A, B, C) {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        let c = C::decode(r)?;
        Ok((a, b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let mut w = SnapshotWriter::with_header();
        w.put_u64(7);
        let bytes = w.finish();
        let mut r = SnapshotReader::with_header(&bytes).expect("own header is valid");
        assert_eq!(r.take_u64(), Ok(7));
        assert!(r.finish().is_ok());
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let mut bytes = SnapshotWriter::with_header().finish();
        bytes[0] ^= 0xff;
        assert_eq!(SnapshotReader::with_header(&bytes).err(), Some(SnapError::BadMagic));
    }

    #[test]
    fn bumped_version_is_rejected_not_misread() {
        let mut w = SnapshotWriter::new();
        w.put_bytes(&[]); // placeholder so the buffer is non-trivial
        let mut bytes = Vec::from(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&w.finish());
        assert_eq!(
            SnapshotReader::with_header(&bytes).err(),
            Some(SnapError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let _ = r.take_u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(1)));
    }

    #[test]
    fn out_of_domain_bytes_are_invalid_not_defaulted() {
        let mut r = SnapshotReader::new(&[2]);
        assert_eq!(r.take_bool(), Err(SnapError::Invalid("bool byte")));
        let mut r = SnapshotReader::new(&[9, 0]);
        assert_eq!(Option::<u8>::decode(&mut r), Err(SnapError::Invalid("option tag")));
        let mut w = SnapshotWriter::new();
        w.put_bytes(&[0xff, 0xfe]); // invalid UTF-8 under a valid length
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.take_str(), Err(SnapError::Invalid("utf-8 string")));
    }

    #[test]
    fn corrupt_length_prefix_cannot_force_a_huge_allocation() {
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX / 2); // a length no input could back
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut r), Err(SnapError::Truncated));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One value exercising every primitive and container impl of the base
    /// codec, generated from a seed. Layer structs round-trip transitively
    /// through the whole-simulator snapshot fuzz (`tests/fuzz_sim.rs`).
    #[derive(Clone, Debug, PartialEq)]
    struct Mixed {
        a: u8,
        b: u16,
        c: u32,
        d: u64,
        e: usize,
        f: bool,
        g: f64,
        s: String,
        v: Vec<u64>,
        dq: VecDeque<(u32, bool)>,
        o: Option<(u64, String, SimTime)>,
        map: BTreeMap<u32, u64>,
        det: DetMap<u16, SimDuration>,
        set: BTreeSet<u16>,
        dset: DetSet<u64>,
        rc: Rc<u32>,
    }

    impl Snapshotable for Mixed {
        fn encode(&self, w: &mut SnapshotWriter) {
            w.put_u8(self.a);
            w.put_u16(self.b);
            w.put_u32(self.c);
            w.put_u64(self.d);
            w.put_usize(self.e);
            w.put_bool(self.f);
            w.put_f64(self.g);
            w.put_str(&self.s);
            w.put(&self.v);
            w.put(&self.dq);
            w.put(&self.o);
            w.put(&self.map);
            w.put(&self.det);
            w.put(&self.set);
            w.put(&self.dset);
            w.put(&self.rc);
        }
        fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
            Ok(Mixed {
                a: r.take_u8()?,
                b: r.take_u16()?,
                c: r.take_u32()?,
                d: r.take_u64()?,
                e: r.take_usize()?,
                f: r.take_bool()?,
                g: r.take_f64()?,
                s: r.take_str()?,
                v: r.get()?,
                dq: r.get()?,
                o: r.get()?,
                map: r.get()?,
                det: r.get()?,
                set: r.get()?,
                dset: r.get()?,
                rc: r.get()?,
            })
        }
    }

    fn mixed_from(seed: u64) -> Mixed {
        let mut rng = proptest::TestRng::new(seed);
        let mut next = move || rng.next_u64();
        Mixed {
            a: next() as u8,
            b: next() as u16,
            c: next() as u32,
            d: next(),
            e: next() as u32 as usize,
            f: next() % 2 == 0,
            // Raw bit patterns deliberately cover NaNs, infinities and
            // signed zero — the codec must reproduce them bit for bit.
            g: f64::from_bits(next()),
            s: format!("níl aon tintéan {}", next()),
            v: (0..next() % 9).map(|_| next()).collect(),
            dq: (0..next() % 7).map(|_| (next() as u32, next() % 2 == 0)).collect(),
            o: if next() % 2 == 0 {
                None
            } else {
                Some((next(), String::new(), SimTime::from_nanos(next())))
            },
            map: (0..next() % 6).map(|_| (next() as u32, next())).collect(),
            det: {
                let mut m = DetMap::new();
                for _ in 0..next() % 6 {
                    m.insert(next() as u16, SimDuration::from_nanos(next()));
                }
                m
            },
            set: (0..next() % 6).map(|_| next() as u16).collect(),
            dset: {
                let mut s = DetSet::new();
                for _ in 0..next() % 6 {
                    s.insert(next());
                }
                s
            },
            rc: Rc::new(next() as u32),
        }
    }

    /// Bit-equality for `Mixed` that treats NaN by pattern, not by `==`.
    fn bit_eq(a: &Mixed, b: &Mixed) -> bool {
        let mut wa = SnapshotWriter::new();
        let mut wb = SnapshotWriter::new();
        a.encode(&mut wa);
        b.encode(&mut wb);
        wa.finish() == wb.finish()
    }

    proptest! {
        /// decode(encode(x)) reproduces x exactly and consumes every byte.
        #[test]
        fn codec_round_trips(seed in any::<u64>()) {
            let value = mixed_from(seed);
            let mut w = SnapshotWriter::with_header();
            w.put(&value);
            let bytes = w.finish();
            let mut r = SnapshotReader::with_header(&bytes).expect("own header");
            let back: Mixed = r.get().expect("own encoding decodes");
            r.finish().expect("no trailing bytes");
            prop_assert!(bit_eq(&value, &back), "round trip changed the value");
        }

        /// Every proper prefix of a snapshot fails to decode with a clean
        /// error — never a panic, never a silently short value.
        #[test]
        fn every_truncation_errors_cleanly(seed in any::<u64>(), cut_seed in any::<u64>()) {
            let value = mixed_from(seed);
            let mut w = SnapshotWriter::with_header();
            w.put(&value);
            let bytes = w.finish();
            let cut = (cut_seed % bytes.len() as u64) as usize;
            let err = SnapshotReader::with_header(&bytes[..cut])
                .and_then(|mut r| {
                    let v: Mixed = r.get()?;
                    r.finish()?;
                    Ok(v)
                })
                .err();
            prop_assert!(err.is_some(), "a {cut}-byte prefix of {} decoded", bytes.len());
        }

        /// Arbitrary single-byte corruption past the header either decodes
        /// to some value or errors — it must never panic. (Corrupting a
        /// float or counter byte legitimately yields a different value;
        /// totality is the property, not rejection.)
        #[test]
        fn byte_flips_never_panic(seed in any::<u64>(), pos_seed in any::<u64>(), xor in 1u8..=255) {
            let value = mixed_from(seed);
            let mut w = SnapshotWriter::with_header();
            w.put(&value);
            let mut bytes = w.finish();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= xor;
            let _ = SnapshotReader::with_header(&bytes).and_then(|mut r| {
                let v: Mixed = r.get()?;
                r.finish()?;
                Ok(v)
            });
        }
    }
}

impl Snapshotable for crate::RunPerf {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.events_processed);
        w.put_u64(self.phy_events);
        w.put_u64(self.mac_events);
        w.put_u64(self.routing_events);
        w.put_u64(self.transport_events);
        w.put_u64(self.mobility_events);
        w.put_u64(self.sampling_events);
        w.put_u64(self.fault_events);
        w.put_u64(self.timers_cancelled);
        w.put_u64(self.timers_stale_popped);
        w.put_u64(self.position_updates);
        w.put_u64(self.link_churn);
        w.put_usize(self.peak_event_queue);
        w.put_usize(self.peak_ifq_depth);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::RunPerf {
            events_processed: r.take_u64()?,
            phy_events: r.take_u64()?,
            mac_events: r.take_u64()?,
            routing_events: r.take_u64()?,
            transport_events: r.take_u64()?,
            mobility_events: r.take_u64()?,
            sampling_events: r.take_u64()?,
            fault_events: r.take_u64()?,
            timers_cancelled: r.take_u64()?,
            timers_stale_popped: r.take_u64()?,
            position_updates: r.take_u64()?,
            link_churn: r.take_u64()?,
            peak_event_queue: r.take_usize()?,
            peak_ifq_depth: r.take_usize()?,
        })
    }
}
