//! A deterministic spatial grid over node positions.
//!
//! The PHY's neighbor queries are range queries: "which nodes lie within
//! 250 m (tx) / 550 m (carrier sense) of this point?". The grid bins nodes
//! into square cells whose side equals the largest query radius, so any
//! node within range of a point is guaranteed to sit in the 3×3 block of
//! cells around it — a candidate set of O(density) instead of O(N).
//!
//! Determinism: candidate collection sorts the merged cell members into
//! ascending node order before returning, so the result is a pure function
//! of the positions — independent of cell iteration order, insertion
//! history, or rebinning history. The cells themselves live in a
//! [`DetMap`] (BTree-backed) so even debug iteration is stable.

use sim_core::DetMap;

use crate::Position;

/// Spatial hash of node indices into square cells of side `cell_m`.
///
/// # Example
///
/// ```
/// use topo::{Position, SpatialGrid};
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(100.0, 0.0),
///     Position::new(5000.0, 5000.0),
/// ];
/// let grid = SpatialGrid::new(550.0, &positions);
/// let mut out = Vec::new();
/// grid.candidates(positions[0], &mut out);
/// assert_eq!(out, vec![0, 1]); // the far node is not a candidate
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    cell_m: f64,
    /// Cell coordinate → members, each kept sorted ascending.
    cells: DetMap<(i64, i64), Vec<usize>>,
    /// Per-node current cell (the node's index keys this vector).
    bins: Vec<(i64, i64)>,
}

impl SpatialGrid {
    /// Builds a grid with cells of side `cell_m` over the given positions.
    ///
    /// `cell_m` must be at least the largest radius later queried through
    /// [`Self::candidates`] for the 3×3 candidate block to be a superset
    /// of every in-range node.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive and finite.
    pub fn new(cell_m: f64, positions: &[Position]) -> Self {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "grid cell size must be positive and finite");
        let mut grid =
            SpatialGrid { cell_m, cells: DetMap::new(), bins: Vec::with_capacity(positions.len()) };
        for (i, &p) in positions.iter().enumerate() {
            let cell = grid.cell_of(p);
            grid.bins.push(cell);
            // Nodes are inserted in ascending index order, so each cell's
            // member list is born sorted.
            grid.cells.entry(cell).or_default().push(i);
        }
        grid
    }

    /// The cell side length in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.bins.len()
    }

    /// The cell coordinate containing `p`.
    pub fn cell_of(&self, p: Position) -> (i64, i64) {
        ((p.x / self.cell_m).floor() as i64, (p.y / self.cell_m).floor() as i64)
    }

    /// Rebins `node` to its new position. O(log cells + cell size); a
    /// move within the same cell is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: usize, p: Position) {
        let cell = self.cell_of(p);
        let old = self.bins[node];
        if cell == old {
            return;
        }
        let emptied = match self.cells.get_mut(&old) {
            Some(members) => {
                if let Ok(at) = members.binary_search(&node) {
                    members.remove(at);
                }
                members.is_empty()
            }
            None => false,
        };
        if emptied {
            self.cells.remove(&old);
        }
        self.bins[node] = cell;
        let members = self.cells.entry(cell).or_default();
        if let Err(at) = members.binary_search(&node) {
            members.insert(at, node);
        }
    }

    /// Collects into `out` every node binned in the 3×3 block of cells
    /// around `p`, sorted ascending — a superset of all nodes within
    /// `cell_m` metres of `p` (including any node at `p` itself).
    pub fn candidates(&self, p: Position, out: &mut Vec<usize>) {
        out.clear();
        let (cx, cy) = self.cell_of(p);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                if let Some(members) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(members);
                }
            }
        }
        // A node appears in exactly one cell, so this is a disjoint merge:
        // sorting yields ascending node order regardless of which cells
        // contributed, matching the brute-force scan's iteration order.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_candidates(positions: &[Position], p: Position, cell_m: f64) -> Vec<usize> {
        // Reference: every node within the 3×3 cell block, computed per
        // node without the index.
        let cell = |q: Position| ((q.x / cell_m).floor() as i64, (q.y / cell_m).floor() as i64);
        let (cx, cy) = cell(p);
        (0..positions.len())
            .filter(|&i| {
                let (x, y) = cell(positions[i]);
                (x - cx).abs() <= 1 && (y - cy).abs() <= 1
            })
            .collect()
    }

    #[test]
    fn candidates_cover_all_in_range_nodes() {
        let positions: Vec<Position> = (0..50)
            .map(|i| Position::new((i % 10) as f64 * 200.0, (i / 10) as f64 * 200.0))
            .collect();
        let grid = SpatialGrid::new(550.0, &positions);
        let mut out = Vec::new();
        for &p in &positions {
            grid.candidates(p, &mut out);
            for (i, &q) in positions.iter().enumerate() {
                if p.distance_to(q) <= 550.0 {
                    assert!(out.contains(&i), "in-range node {i} missing from candidates");
                }
            }
            assert_eq!(out, brute_candidates(&positions, p, 550.0));
            assert!(out.windows(2).all(|w| w[0] < w[1]), "candidates sorted and unique");
        }
    }

    #[test]
    fn rebinning_moves_membership() {
        let positions = vec![Position::new(0.0, 0.0), Position::new(10_000.0, 0.0)];
        let mut grid = SpatialGrid::new(550.0, &positions);
        let mut out = Vec::new();
        grid.candidates(positions[0], &mut out);
        assert_eq!(out, vec![0]);
        grid.set(1, Position::new(100.0, 100.0));
        grid.candidates(positions[0], &mut out);
        assert_eq!(out, vec![0, 1]);
        grid.set(1, Position::new(10_000.0, 0.0));
        grid.candidates(positions[0], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn move_within_cell_is_stable() {
        let positions = vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)];
        let mut grid = SpatialGrid::new(550.0, &positions);
        grid.set(0, Position::new(50.0, 50.0));
        let mut out = Vec::new();
        grid.candidates(Position::new(0.0, 0.0), &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn negative_coordinates_bin_correctly() {
        let positions = vec![Position::new(-10.0, -10.0), Position::new(10.0, 10.0)];
        let grid = SpatialGrid::new(550.0, &positions);
        assert_eq!(grid.cell_of(positions[0]), (-1, -1));
        let mut out = Vec::new();
        grid.candidates(positions[1], &mut out);
        assert_eq!(out, vec![0, 1], "3×3 block spans the origin");
    }
}
