//! Node placement geometry.

use std::fmt;

/// A node's position on the plane, in metres.
///
/// # Example
///
/// ```
/// use topo::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// assert_eq!(a.distance_sq_to(b), 25.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// Squared Euclidean distance to `other`, in metres².
    ///
    /// Range checks compare this against a squared radius, skipping the
    /// square root on the hot path. All range predicates in the workspace
    /// must use this one form so that every code path (brute-force or
    /// grid-indexed) agrees bit-for-bit on adjacency.
    pub fn distance_sq_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl sim_core::Snapshotable for Position {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Position { x: r.take_f64()?, y: r.take_f64()? })
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_to_self() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn squared_distance_matches_on_exact_grid_multiples() {
        // Paper topologies sit on exact 250 m multiples whose squares are
        // exactly representable, so `d <= r` and `d² <= r²` agree.
        for spacing in [100.0, 200.0, 250.0, 500.0] {
            let a = Position::new(0.0, 0.0);
            let b = Position::new(spacing, 0.0);
            for range in [250.0, 550.0] {
                assert_eq!(
                    a.distance_to(b) <= range,
                    a.distance_sq_to(b) <= range * range,
                    "spacing {spacing} range {range}"
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Position::new(250.0, 0.0).to_string(), "(250.0, 0.0)");
    }
}
