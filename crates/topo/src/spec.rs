//! Declarative topology / mobility / PHY-index specifications.
//!
//! These are the `SimConfig`-level descriptions of *where nodes start*
//! ([`TopologySpec`]), *how they move* ([`MobilitySpec`]) and *how the PHY
//! indexes them* ([`IndexKind`]). All three parse from the compact CLI
//! syntax the harness bins accept (`--topology random-disc:100`,
//! `--mobility waypoint:1-20@2`, `--phy-index brute-force`) and render
//! back to it via `Display`.

use std::fmt;

use sim_core::SimDuration;

use crate::{generators, Position};

/// How the PHY indexes node positions for neighbor queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexKind {
    /// Spatial-grid index: position updates touch only candidate cells.
    /// The default; produces byte-identical traces to [`Self::BruteForce`].
    #[default]
    Grid,
    /// Reference O(N²) full recompute, kept as the differential baseline.
    BruteForce,
}

impl IndexKind {
    /// Parses `"grid"` or `"brute-force"`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "grid" => Ok(IndexKind::Grid),
            "brute-force" | "brute" => Ok(IndexKind::BruteForce),
            other => Err(format!("unknown PHY index '{other}' (grid, brute-force)")),
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexKind::Grid => "grid",
            IndexKind::BruteForce => "brute-force",
        })
    }
}

impl sim_core::Snapshotable for IndexKind {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self {
            IndexKind::Grid => 0,
            IndexKind::BruteForce => 1,
        });
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        match r.take_u8()? {
            0 => Ok(IndexKind::Grid),
            1 => Ok(IndexKind::BruteForce),
            _ => Err(sim_core::SnapError::Invalid("phy index kind tag")),
        }
    }
}

/// A generated initial node placement.
///
/// Every variant regenerates bit-identically from `(spec, seed)`, so a
/// topology is fully described by its `SimConfig`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologySpec {
    /// `hops + 1` nodes in a line at 250 m spacing (paper Fig. 5.1).
    Chain {
        /// Number of hops (nodes minus one).
        hops: u16,
    },
    /// `rows × cols` lattice at 250 m spacing.
    Grid {
        /// Rows.
        rows: u16,
        /// Columns.
        cols: u16,
    },
    /// Uniform random placement in `width_m × height_m`, re-sampled until
    /// connected at the radio's transmission range.
    RandomDisc {
        /// Node count.
        count: u16,
        /// Area width in metres.
        width_m: f64,
        /// Area height in metres.
        height_m: f64,
    },
    /// Manhattan street grid: a node at every intersection plus `extra`
    /// nodes along random streets, blocks 250 m on a side.
    CityBlocks {
        /// City blocks along x.
        blocks_x: u16,
        /// City blocks along y.
        blocks_y: u16,
        /// Extra mid-street nodes beyond the intersections.
        extra: u16,
    },
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec::Chain { hops: 4 }
    }
}

impl TopologySpec {
    /// A random-disc spec sized by [`generators::dense_side_m`] for the
    /// given count: dense enough for the connectivity retry to converge.
    pub fn random_disc_dense(count: u16, range_m: f64) -> Self {
        let side = generators::dense_side_m(count as usize, range_m);
        TopologySpec::RandomDisc { count, width_m: side, height_m: side }
    }

    /// The number of nodes this spec generates.
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::Chain { hops } => hops as usize + 1,
            TopologySpec::Grid { rows, cols } => rows as usize * cols as usize,
            TopologySpec::RandomDisc { count, .. } => count as usize,
            TopologySpec::CityBlocks { blocks_x, blocks_y, extra } => {
                (blocks_x as usize + 1) * (blocks_y as usize + 1) + extra as usize
            }
        }
    }

    /// The roamable area `(width_m, height_m)`: the placement's bounding
    /// box, floored at one 250 m spacing per axis so degenerate (line)
    /// topologies still give mobility room to move.
    pub fn extent(&self) -> (f64, f64) {
        let s = generators::SPACING_M;
        match *self {
            TopologySpec::Chain { hops } => ((hops as f64 * s).max(s), s),
            TopologySpec::Grid { rows, cols } => {
                (((cols as f64 - 1.0) * s).max(s), ((rows as f64 - 1.0) * s).max(s))
            }
            TopologySpec::RandomDisc { width_m, height_m, .. } => (width_m, height_m),
            TopologySpec::CityBlocks { blocks_x, blocks_y, .. } => {
                (blocks_x as f64 * s, blocks_y as f64 * s)
            }
        }
    }

    /// Generates the placement. `range_m` is the radio transmission range
    /// (used by the random-disc connectivity retry); `seed` drives all
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero hops/rows/cols/count) or if
    /// a random placement cannot be made connected — the same conditions
    /// [`Self::validate`] rejects.
    pub fn build(&self, range_m: f64, seed: u64) -> Vec<Position> {
        match *self {
            TopologySpec::Chain { hops } => generators::chain(hops as usize),
            TopologySpec::Grid { rows, cols } => generators::grid(rows as usize, cols as usize),
            TopologySpec::RandomDisc { count, width_m, height_m } => {
                generators::random_disc(count as usize, width_m, height_m, range_m, seed)
            }
            TopologySpec::CityBlocks { blocks_x, blocks_y, extra } => generators::city_blocks(
                blocks_x as usize,
                blocks_y as usize,
                generators::SPACING_M,
                extra as usize,
                seed,
            ),
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on degenerate dimensions or a non-finite area.
    pub fn validate(&self) {
        match *self {
            TopologySpec::Chain { hops } => assert!(hops > 0, "a chain needs at least one hop"),
            TopologySpec::Grid { rows, cols } => {
                assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
            }
            TopologySpec::RandomDisc { count, width_m, height_m } => {
                assert!(count > 0, "need at least one node");
                assert!(
                    width_m > 0.0 && width_m.is_finite() && height_m > 0.0 && height_m.is_finite(),
                    "random-disc area must be positive and finite"
                );
            }
            TopologySpec::CityBlocks { blocks_x, blocks_y, .. } => {
                assert!(blocks_x > 0 && blocks_y > 0, "need at least one city block per axis");
            }
        }
    }

    /// Parses the CLI syntax:
    ///
    /// * `chain` / `chain:8`
    /// * `grid` / `grid:4x8` (rows×cols)
    /// * `random-disc` / `random-disc:100` / `random-disc:100@2500x2500`
    /// * `city-blocks` / `city-blocks:4x4@20` (blocks, extra nodes)
    ///
    /// Counts without an explicit area get a density that keeps the
    /// connectivity retry fast (mean degree ~12 at 250 m range).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, arg) = match text.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (text, None),
        };
        match name {
            "chain" => {
                let hops = match arg {
                    Some(a) => parse_u16(a, "chain hop count")?,
                    None => 4,
                };
                Ok(TopologySpec::Chain { hops })
            }
            "grid" => {
                let (rows, cols) = match arg {
                    Some(a) => parse_pair_u16(a, 'x', "grid dimensions")?,
                    None => (5, 5),
                };
                Ok(TopologySpec::Grid { rows, cols })
            }
            "random-disc" => match arg {
                None => Ok(TopologySpec::random_disc_dense(50, generators::SPACING_M)),
                Some(a) => {
                    let (count_text, area) = match a.split_once('@') {
                        Some((c, dims)) => (c, Some(dims)),
                        None => (a, None),
                    };
                    let count = parse_u16(count_text, "random-disc node count")?;
                    match area {
                        None => Ok(TopologySpec::random_disc_dense(count, generators::SPACING_M)),
                        Some(dims) => {
                            let (w, h) = parse_pair_f64(dims, 'x', "random-disc area")?;
                            Ok(TopologySpec::RandomDisc { count, width_m: w, height_m: h })
                        }
                    }
                }
            },
            "city-blocks" => {
                let (blocks, extra) = match arg {
                    None => (("4", "4"), 16),
                    Some(a) => {
                        let (blocks_text, extra_text) = match a.split_once('@') {
                            Some((b, e)) => (b, Some(e)),
                            None => (a, None),
                        };
                        let (bx, by) = match blocks_text.split_once('x') {
                            Some(p) => p,
                            None => return Err("city-blocks wants BXxBY[@EXTRA]".to_string()),
                        };
                        let extra = match extra_text {
                            Some(e) => parse_u16(e, "city-blocks extra node count")?,
                            None => 16,
                        };
                        ((bx, by), extra)
                    }
                };
                Ok(TopologySpec::CityBlocks {
                    blocks_x: parse_u16(blocks.0, "city blocks along x")?,
                    blocks_y: parse_u16(blocks.1, "city blocks along y")?,
                    extra,
                })
            }
            other => {
                Err(format!("unknown topology '{other}' (chain, grid, random-disc, city-blocks)"))
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Chain { hops } => write!(f, "chain:{hops}"),
            TopologySpec::Grid { rows, cols } => write!(f, "grid:{rows}x{cols}"),
            TopologySpec::RandomDisc { count, width_m, height_m } => {
                write!(f, "random-disc:{count}@{width_m:.0}x{height_m:.0}")
            }
            TopologySpec::CityBlocks { blocks_x, blocks_y, extra } => {
                write!(f, "city-blocks:{blocks_x}x{blocks_y}@{extra}")
            }
        }
    }
}

/// How nodes move once placed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum MobilitySpec {
    /// Nodes stay where the topology generator put them.
    #[default]
    Static,
    /// Random waypoint over the topology's [`TopologySpec::extent`]:
    /// pick a uniform destination, travel at a uniform speed from
    /// `[min, max]`, pause, repeat.
    Waypoint {
        /// Slowest leg speed, m/s (must be positive).
        min_speed_mps: f64,
        /// Fastest leg speed, m/s.
        max_speed_mps: f64,
        /// Pause at each waypoint before the next leg.
        pause: SimDuration,
    },
}

impl MobilitySpec {
    /// The literature-standard default waypoint model: 1–20 m/s, no pause.
    pub const DEFAULT_WAYPOINT: MobilitySpec = MobilitySpec::Waypoint {
        min_speed_mps: 1.0,
        max_speed_mps: 20.0,
        pause: SimDuration::ZERO,
    };

    /// Parses the CLI syntax:
    ///
    /// * `static`
    /// * `waypoint` (1–20 m/s, no pause)
    /// * `waypoint:5-15` (speed range in m/s)
    /// * `waypoint:5-15@2` (…with a 2 s pause at each waypoint)
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, arg) = match text.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (text, None),
        };
        match name {
            "static" => Ok(MobilitySpec::Static),
            "waypoint" => {
                let mut spec = (1.0, 20.0, SimDuration::ZERO);
                if let Some(a) = arg {
                    let (speeds, pause_text) = match a.split_once('@') {
                        Some((s, p)) => (s, Some(p)),
                        None => (a, None),
                    };
                    let (lo, hi) = parse_pair_f64(speeds, '-', "waypoint speed range")?;
                    if !(lo > 0.0 && hi >= lo && hi.is_finite()) {
                        return Err(format!("bad waypoint speed range '{speeds}'"));
                    }
                    spec.0 = lo;
                    spec.1 = hi;
                    if let Some(p) = pause_text {
                        let secs = parse_f64(p, "waypoint pause seconds")?;
                        if !(secs >= 0.0 && secs.is_finite()) {
                            return Err(format!("bad waypoint pause '{p}'"));
                        }
                        spec.2 = SimDuration::from_secs_f64(secs);
                    }
                }
                Ok(MobilitySpec::Waypoint {
                    min_speed_mps: spec.0,
                    max_speed_mps: spec.1,
                    pause: spec.2,
                })
            }
            other => Err(format!("unknown mobility model '{other}' (static, waypoint)")),
        }
    }
}

impl fmt::Display for MobilitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MobilitySpec::Static => f.write_str("static"),
            MobilitySpec::Waypoint { min_speed_mps, max_speed_mps, pause } => {
                write!(f, "waypoint:{min_speed_mps}-{max_speed_mps}@{}", pause.as_secs_f64())
            }
        }
    }
}

/// One leg of a scripted waypoint trace: travel to `target` at
/// `speed_mps`, then hold for `pause` before the next leg starts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaypointLeg {
    /// Where this leg ends.
    pub target: Position,
    /// Travel speed in m/s (must be positive).
    pub speed_mps: f64,
    /// Dwell time at `target` before the next leg.
    pub pause: SimDuration,
}

impl WaypointLeg {
    /// A leg with no pause at its end.
    pub fn to(target: Position, speed_mps: f64) -> Self {
        WaypointLeg { target, speed_mps, pause: SimDuration::ZERO }
    }

    /// Sets the dwell time at the leg's end.
    #[must_use]
    pub fn pausing(mut self, pause: SimDuration) -> Self {
        self.pause = pause;
        self
    }
}

impl sim_core::Snapshotable for WaypointLeg {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.target);
        w.put_f64(self.speed_mps);
        w.put(&self.pause);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let leg = WaypointLeg { target: r.get()?, speed_mps: r.take_f64()?, pause: r.get()? };
        if !(leg.speed_mps > 0.0 && leg.speed_mps.is_finite()) {
            return Err(sim_core::SnapError::Invalid("waypoint leg speed"));
        }
        Ok(leg)
    }
}

fn parse_u16(text: &str, what: &str) -> Result<u16, String> {
    match text.parse::<u16>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(format!("bad {what} '{text}'")),
    }
}

fn parse_f64(text: &str, what: &str) -> Result<f64, String> {
    text.parse::<f64>().map_err(|_| format!("bad {what} '{text}'"))
}

fn parse_pair_u16(text: &str, sep: char, what: &str) -> Result<(u16, u16), String> {
    match text.split_once(sep) {
        Some((a, b)) => Ok((parse_u16(a, what)?, parse_u16(b, what)?)),
        None => Err(format!("bad {what} '{text}' (want A{sep}B)")),
    }
}

fn parse_pair_f64(text: &str, sep: char, what: &str) -> Result<(f64, f64), String> {
    match text.split_once(sep) {
        Some((a, b)) => Ok((parse_f64(a, what)?, parse_f64(b, what)?)),
        None => Err(format!("bad {what} '{text}' (want A{sep}B)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parse_round_trips() {
        for text in ["chain:8", "grid:3x4", "random-disc:100@2500x2500", "city-blocks:4x4@20"] {
            let spec = TopologySpec::parse(text).expect(text);
            assert_eq!(spec.to_string(), text, "round trip {text}");
        }
    }

    #[test]
    fn topology_parse_defaults() {
        assert_eq!(TopologySpec::parse("chain"), Ok(TopologySpec::Chain { hops: 4 }));
        assert_eq!(TopologySpec::parse("grid"), Ok(TopologySpec::Grid { rows: 5, cols: 5 }));
        let disc = TopologySpec::parse("random-disc:100").expect("dense disc");
        match disc {
            TopologySpec::RandomDisc { count, width_m, height_m } => {
                assert_eq!(count, 100);
                assert_eq!(width_m, height_m);
                assert!(width_m > 1000.0, "100 nodes need room: {width_m}");
            }
            other => panic!("wrong spec {other:?}"),
        }
        assert!(TopologySpec::parse("torus").is_err());
        assert!(TopologySpec::parse("chain:0").is_err());
    }

    #[test]
    fn topology_specs_build_and_count() {
        for text in ["chain:6", "grid:3x4", "random-disc:30", "city-blocks:3x3@10"] {
            let spec = TopologySpec::parse(text).expect(text);
            spec.validate();
            let positions = spec.build(250.0, 11);
            assert_eq!(positions.len(), spec.node_count(), "{text}");
            let (w, h) = spec.extent();
            assert!(w >= 250.0 && h >= 250.0, "{text} extent ({w}, {h})");
        }
    }

    #[test]
    fn mobility_parse() {
        assert_eq!(MobilitySpec::parse("static"), Ok(MobilitySpec::Static));
        assert_eq!(MobilitySpec::parse("waypoint"), Ok(MobilitySpec::DEFAULT_WAYPOINT));
        assert_eq!(
            MobilitySpec::parse("waypoint:5-15@2"),
            Ok(MobilitySpec::Waypoint {
                min_speed_mps: 5.0,
                max_speed_mps: 15.0,
                pause: SimDuration::from_secs(2),
            })
        );
        assert!(MobilitySpec::parse("waypoint:15-5").is_err(), "inverted range");
        assert!(MobilitySpec::parse("waypoint:0-5").is_err(), "zero speed");
        assert!(MobilitySpec::parse("brownian").is_err());
    }

    #[test]
    fn index_kind_parse_and_codec() {
        use sim_core::{SnapshotReader, SnapshotWriter, Snapshotable};
        assert_eq!(IndexKind::parse("grid"), Ok(IndexKind::Grid));
        assert_eq!(IndexKind::parse("brute-force"), Ok(IndexKind::BruteForce));
        assert!(IndexKind::parse("quadtree").is_err());
        for kind in [IndexKind::Grid, IndexKind::BruteForce] {
            let mut w = SnapshotWriter::new();
            kind.encode(&mut w);
            let bytes = w.finish();
            let mut r = SnapshotReader::new(&bytes);
            assert_eq!(IndexKind::decode(&mut r).expect("decode"), kind);
        }
    }

    #[test]
    fn waypoint_leg_codec_rejects_bad_speed() {
        use sim_core::{SnapshotReader, SnapshotWriter, Snapshotable};
        let leg =
            WaypointLeg::to(Position::new(100.0, 200.0), 12.5).pausing(SimDuration::from_secs(3));
        let mut w = SnapshotWriter::new();
        leg.encode(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(WaypointLeg::decode(&mut r).expect("decode"), leg);

        let bad = WaypointLeg { speed_mps: 0.0, ..leg };
        let mut w = SnapshotWriter::new();
        bad.encode(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert!(WaypointLeg::decode(&mut r).is_err());
    }
}
