//! Topology & mobility subsystem: where nodes are, how they move, and how
//! the PHY finds their neighbours.
//!
//! This crate owns three concerns the PHY and simulator build on:
//!
//! * **Geometry** — [`Position`] on the metre plane, with both exact
//!   ([`Position::distance_to`]) and hot-path squared
//!   ([`Position::distance_sq_to`]) distance forms.
//! * **Spatial index** — [`SpatialGrid`], a deterministic cell grid keyed
//!   to the carrier-sense radius so neighbor queries and position updates
//!   visit O(density) candidates instead of all N nodes. Candidate sets
//!   are returned in ascending node order, making the grid a *pure
//!   accelerator*: byte-identical traces to the brute-force scan.
//! * **Scenario vocabulary** — topology generators ([`generators`]) and
//!   the declarative [`TopologySpec`] / [`MobilitySpec`] / [`IndexKind`]
//!   specs that `SimConfig` and the harness `--topology`/`--mobility`
//!   flags speak, plus [`WaypointLeg`] for scripted, replayable motion.
//!
//! Everything is seed-deterministic: random placements and waypoint
//! streams derive from `SimRng`, never from ambient randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod geometry;
mod grid;
mod shard;
mod spec;

pub use geometry::Position;
pub use grid::SpatialGrid;
pub use shard::ShardMap;
pub use spec::{IndexKind, MobilitySpec, TopologySpec, WaypointLeg};
