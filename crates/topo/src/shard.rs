//! Cell→shard partition for the conservative parallel scheduler.
//!
//! Nodes are assigned a *home shard* by splitting the grid's column strips
//! (vertical bands of cells) into contiguous runs with roughly equal node
//! counts. Column strips compose with [`SpatialGrid`]'s cell geometry: a
//! cell column belongs to exactly one shard, so border ownership is
//! deterministic and every node in a cell shares a home shard.
//!
//! The map is built once from the initial placement and stays fixed for the
//! run — home shards are a *routing hint* for the sharded scheduler (which
//! sub-queue holds a node's events), never a semantic input: the merged pop
//! order is identical for any assignment, so a mobile node drifting out of
//! its home strip costs balance, not correctness.

use crate::Position;

/// A fixed node→shard assignment derived from initial positions.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Upper cell-column bound (exclusive) of each shard's strip, ascending.
    cuts: Vec<i64>,
    cell_m: f64,
    assignment: Vec<u8>,
}

impl ShardMap {
    /// Partition `positions` into `shards` column strips of roughly equal
    /// node count. `cell_m` must match the [`SpatialGrid`] cell size so
    /// strip borders land on cell borders.
    pub fn build(shards: usize, cell_m: f64, positions: &[Position]) -> Self {
        let shards = shards.clamp(1, u8::MAX as usize);
        assert!(cell_m > 0.0, "cell size must be positive");
        // Sorted cell columns, one entry per node (duplicates kept so cuts
        // balance node counts, not column counts).
        let mut cols: Vec<i64> = positions.iter().map(|p| (p.x / cell_m).floor() as i64).collect();
        cols.sort_unstable();
        // Quantile cuts over the occupied columns. A cut at column c means
        // "columns < c belong to the shard left of the cut"; nudging each
        // cut up to the next distinct column keeps whole columns together.
        let mut cuts = Vec::with_capacity(shards);
        for k in 1..shards {
            let idx = k * cols.len() / shards;
            let cut = cols.get(idx).copied().unwrap_or(i64::MAX);
            // Whole-column ownership: advance past duplicates of the
            // previous cut so strips stay disjoint and nonoverlapping.
            let cut = match cuts.last() {
                Some(&prev) if cut <= prev => prev + 1,
                _ => cut,
            };
            cuts.push(cut);
        }
        cuts.push(i64::MAX); // last shard owns everything to the right
        let map = ShardMap { cuts, cell_m, assignment: Vec::new() };
        let assignment = positions.iter().map(|p| map.shard_of(*p) as u8).collect();
        ShardMap { assignment, ..map }
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.cuts.len()
    }

    /// The shard owning the cell column containing `pos`.
    pub fn shard_of(&self, pos: Position) -> usize {
        let col = (pos.x / self.cell_m).floor() as i64;
        // cuts is ascending; the first cut strictly above `col` names the shard.
        self.cuts.iter().position(|&c| col < c).unwrap_or(self.cuts.len() - 1)
    }

    /// The fixed home shard of `node` (by initial position).
    pub fn home_of(&self, node: usize) -> usize {
        self.assignment.get(node).map_or(0, |&s| usize::from(s))
    }

    /// The full node→shard table, one byte per node.
    pub fn assignment(&self) -> &[u8] {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let positions: Vec<Position> = (0..10).map(|i| pos(i as f64 * 100.0, 0.0)).collect();
        let m = ShardMap::build(1, 550.0, &positions);
        assert_eq!(m.shard_count(), 1);
        assert!(positions.iter().all(|&p| m.shard_of(p) == 0));
        assert!(m.assignment().iter().all(|&s| s == 0));
    }

    #[test]
    fn strips_are_contiguous_and_balanced() {
        // 40 nodes in a uniform line across 8 cell columns.
        let positions: Vec<Position> = (0..40).map(|i| pos(i as f64 * 110.0, 50.0)).collect();
        let m = ShardMap::build(4, 550.0, &positions);
        assert_eq!(m.shard_count(), 4);
        // Shards must be nondecreasing left-to-right (contiguous strips).
        let shards: Vec<usize> = positions.iter().map(|&p| m.shard_of(p)).collect();
        for w in shards.windows(2) {
            assert!(w[0] <= w[1], "strips must be contiguous: {shards:?}");
        }
        // All shards occupied, and counts within a column of each other.
        for s in 0..4 {
            let count = shards.iter().filter(|&&x| x == s).count();
            assert!(count >= 5, "shard {s} underfilled: {count} of 40");
        }
    }

    #[test]
    fn whole_columns_share_a_shard() {
        // Many nodes piled into few columns: cuts must not split a column.
        let positions: Vec<Position> =
            (0..30).map(|i| pos((i % 3) as f64 * 550.0, i as f64)).collect();
        let m = ShardMap::build(4, 550.0, &positions);
        for i in 0..30 {
            for j in 0..30 {
                if i % 3 == j % 3 {
                    assert_eq!(
                        m.shard_of(positions[i]),
                        m.shard_of(positions[j]),
                        "same column, different shard"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_columns_degrades_gracefully() {
        let positions = vec![pos(0.0, 0.0), pos(10.0, 0.0)];
        let m = ShardMap::build(8, 550.0, &positions);
        assert_eq!(m.shard_count(), 8);
        // Everything lands in one strip; no panic, no out-of-range shard.
        for &p in &positions {
            assert!(m.shard_of(p) < 8);
        }
    }

    #[test]
    fn home_is_frozen_at_build_time() {
        let mut positions: Vec<Position> = (0..20).map(|i| pos(i as f64 * 200.0, 0.0)).collect();
        let m = ShardMap::build(2, 550.0, &positions);
        let homes: Vec<usize> = (0..20).map(|n| m.home_of(n)).collect();
        // Move every node far right: homes must not change.
        for p in &mut positions {
            p.x += 100_000.0;
        }
        assert_eq!(homes, (0..20).map(|n| m.home_of(n)).collect::<Vec<_>>());
        // Out-of-range node index defaults to shard 0 rather than panicking.
        assert_eq!(m.home_of(999), 0);
    }
}
