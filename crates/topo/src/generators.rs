//! Topology generators: regular placements and seeded random placements.
//!
//! Everything here is a pure function of its arguments (random placements
//! take an explicit seed), so a topology can be regenerated bit-identically
//! from a `SimConfig` — positions never need to be serialised into
//! scenario scripts.

use sim_core::SimRng;

use crate::Position;

/// Node spacing used throughout the paper: exactly the 250 m transmission
/// range, so each node connects only to its immediate neighbours.
pub const SPACING_M: f64 = 250.0;

/// Mean node degree targeted by [`dense_side_m`]: comfortably above the
/// ~ln N connectivity threshold of a random geometric graph for the node
/// counts we simulate, so [`random_disc`]'s bounded retry succeeds.
const TARGET_MEAN_DEGREE: f64 = 12.0;

/// An `hops`-hop chain: `hops + 1` nodes in a straight line, 250 m apart
/// (paper Fig. 5.1).
///
/// # Example
///
/// ```
/// use topo::generators;
/// let positions = generators::chain(4);
/// assert_eq!(positions.len(), 5);
/// assert_eq!(positions[4].x, 1000.0);
/// ```
///
/// # Panics
///
/// Panics if `hops` is zero.
pub fn chain(hops: usize) -> Vec<Position> {
    assert!(hops > 0, "a chain needs at least one hop");
    (0..=hops).map(|i| Position::new(i as f64 * SPACING_M, 0.0)).collect()
}

/// An `rows × cols` grid with 250 m spacing. Node `(r, c)` has index
/// `r * cols + c`.
///
/// # Example
///
/// ```
/// use topo::generators;
/// assert_eq!(generators::grid(3, 4).len(), 12);
/// ```
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Vec<Position> {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut positions = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Position::new(c as f64 * SPACING_M, r as f64 * SPACING_M));
        }
    }
    positions
}

/// `count` nodes placed uniformly at random in a `width × height` area,
/// re-sampled (up to a bounded number of attempts) until the topology is
/// connected under the given transmission range. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if no connected placement is found within 1000 attempts —
/// choose a denser configuration (see [`dense_side_m`]).
pub fn random_disc(
    count: usize,
    width_m: f64,
    height_m: f64,
    range_m: f64,
    seed: u64,
) -> Vec<Position> {
    assert!(count > 0, "need at least one node");
    let mut rng = SimRng::new(seed);
    for _ in 0..1000 {
        let positions: Vec<Position> = (0..count)
            .map(|_| Position::new(rng.unit_f64() * width_m, rng.unit_f64() * height_m))
            .collect();
        if is_connected(&positions, range_m) {
            return positions;
        }
    }
    panic!("no connected placement found in 1000 attempts; increase density");
}

/// The side of a square area in which `count` uniformly placed nodes with
/// transmission radius `range_m` have a mean degree of ~12 — dense enough
/// that [`random_disc`]'s connectivity retry converges quickly at every
/// node count in the scaling benchmarks, sparse enough to be multi-hop.
pub fn dense_side_m(count: usize, range_m: f64) -> f64 {
    assert!(count > 0 && range_m > 0.0, "need nodes and a positive range");
    let area = count as f64 * std::f64::consts::PI * range_m * range_m / TARGET_MEAN_DEGREE;
    area.sqrt().round()
}

/// A Manhattan street grid of `blocks_x × blocks_y` city blocks with
/// `block_m`-long block sides: one node at every street intersection
/// (the connected backbone) plus `extra` nodes dropped uniformly along
/// randomly chosen streets. Deterministic in `seed`.
///
/// With `block_m` no larger than the transmission range the topology is
/// connected by construction: intersections form a connected lattice and
/// every mid-street node is within half a block of an intersection.
///
/// Intersection `(ix, iy)` has index `iy * (blocks_x + 1) + ix`; the
/// `extra` street nodes follow.
///
/// # Panics
///
/// Panics if either block count is zero or `block_m` is not positive.
pub fn city_blocks(
    blocks_x: usize,
    blocks_y: usize,
    block_m: f64,
    extra: usize,
    seed: u64,
) -> Vec<Position> {
    assert!(blocks_x > 0 && blocks_y > 0, "need at least one city block per axis");
    assert!(block_m > 0.0 && block_m.is_finite(), "block side must be positive");
    let mut positions = Vec::with_capacity((blocks_x + 1) * (blocks_y + 1) + extra);
    for iy in 0..=blocks_y {
        for ix in 0..=blocks_x {
            positions.push(Position::new(ix as f64 * block_m, iy as f64 * block_m));
        }
    }
    let mut rng = SimRng::new(seed);
    let width = blocks_x as f64 * block_m;
    let height = blocks_y as f64 * block_m;
    for _ in 0..extra {
        let horizontal = rng.below(2) == 0;
        if horizontal {
            let street = rng.below(blocks_y as u32 + 1);
            positions.push(Position::new(rng.unit_f64() * width, street as f64 * block_m));
        } else {
            let street = rng.below(blocks_x as u32 + 1);
            positions.push(Position::new(street as f64 * block_m, rng.unit_f64() * height));
        }
    }
    positions
}

/// Whether the unit-disc graph over `positions` with radius `range_m` is
/// connected.
pub fn is_connected(positions: &[Position], range_m: f64) -> bool {
    if positions.is_empty() {
        return true;
    }
    let n = positions.len();
    let range_sq = range_m * range_m;
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    if let Some(first) = seen.first_mut() {
        *first = true;
    }
    let mut visited = 1;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && positions[i].distance_sq_to(positions[j]) <= range_sq {
                seen[j] = true;
                visited += 1;
                stack.push(j);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_geometry() {
        let p = chain(8);
        assert_eq!(p.len(), 9);
        for (i, pos) in p.iter().enumerate() {
            assert_eq!(pos.x, i as f64 * 250.0);
            assert_eq!(pos.y, 0.0);
        }
    }

    #[test]
    fn grid_geometry() {
        let p = grid(3, 4);
        assert_eq!(p.len(), 12);
        assert_eq!(p[11], Position::new(750.0, 500.0));
        assert!(is_connected(&p, 250.0));
    }

    #[test]
    fn random_disc_is_deterministic_and_connected() {
        let a = random_disc(12, 800.0, 800.0, 250.0, 7);
        let b = random_disc(12, 800.0, 800.0, 250.0, 7);
        assert_eq!(a, b, "same seed, same placement");
        assert!(is_connected(&a, 250.0));
        let c = random_disc(12, 800.0, 800.0, 250.0, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y), "different seeds differ");
    }

    #[test]
    fn dense_side_supports_large_counts() {
        // The density heuristic must let random_disc converge at every
        // node count the scaling benchmark uses.
        for count in [25usize, 100, 400] {
            let side = dense_side_m(count, 250.0);
            let p = random_disc(count, side, side, 250.0, 42);
            assert_eq!(p.len(), count);
            assert!(is_connected(&p, 250.0));
        }
    }

    #[test]
    fn city_blocks_backbone_is_connected() {
        let p = city_blocks(4, 3, 250.0, 25, 9);
        assert_eq!(p.len(), 5 * 4 + 25);
        assert!(is_connected(&p, 250.0), "street grid with 250 m blocks is connected");
        // Every node sits on a street line.
        for pos in &p {
            let on_h_street = (pos.y / 250.0).fract().abs() < 1e-9;
            let on_v_street = (pos.x / 250.0).fract().abs() < 1e-9;
            assert!(on_h_street || on_v_street, "node off the street grid: {pos}");
        }
        let q = city_blocks(4, 3, 250.0, 25, 9);
        assert_eq!(p, q, "deterministic in seed");
    }

    #[test]
    fn connectivity_check() {
        assert!(is_connected(&[], 100.0));
        let split = vec![Position::new(0.0, 0.0), Position::new(1000.0, 0.0)];
        assert!(!is_connected(&split, 250.0));
        let joined =
            vec![Position::new(0.0, 0.0), Position::new(200.0, 0.0), Position::new(400.0, 0.0)];
        assert!(is_connected(&joined, 250.0));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_chain_rejected() {
        let _ = chain(0);
    }
}
