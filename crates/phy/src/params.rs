//! Radio parameterisation (paper Table 5.1 defaults).

use sim_core::SimDuration;

/// Physical-layer parameters of every radio in the network.
///
/// Defaults reproduce the paper's NS2 setup: 2 Mbps data rate, 1 Mbps basic
/// rate for control frames and the PLCP preamble/header (192 µs, the 802.11b
/// long preamble), 250 m transmission range, 550 m carrier-sense range, no
/// random loss.
///
/// # Example
///
/// ```
/// use phy::RadioParams;
/// let p = RadioParams::default();
/// // A 1500-byte packet plus 34 bytes MAC overhead at 2 Mbps + PLCP:
/// assert_eq!(p.data_tx_time(1534).as_micros(), 192 + 6136);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioParams {
    /// Bit rate for DATA frames (bits per second).
    pub data_rate_bps: u64,
    /// Bit rate for RTS/CTS/ACK control frames.
    pub basic_rate_bps: u64,
    /// Fixed PLCP preamble + header time prepended to every frame.
    pub plcp_overhead: SimDuration,
    /// Distance within which a frame can be decoded (metres).
    pub tx_range_m: f64,
    /// Distance within which a transmission is sensed and interferes
    /// (metres). Must be at least `tx_range_m`.
    pub cs_range_m: f64,
    /// Probability that an individual otherwise-receivable frame is
    /// corrupted by channel error ("random loss"). Applied per receiver.
    pub per_frame_loss: f64,
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams {
            data_rate_bps: 2_000_000,
            basic_rate_bps: 1_000_000,
            plcp_overhead: SimDuration::from_micros(192),
            tx_range_m: 250.0,
            cs_range_m: 550.0,
            per_frame_loss: 0.0,
        }
    }
}

impl RadioParams {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if rates are zero, ranges are non-positive or inverted, or the
    /// loss probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.data_rate_bps > 0, "data rate must be positive");
        assert!(self.basic_rate_bps > 0, "basic rate must be positive");
        assert!(self.tx_range_m > 0.0, "tx range must be positive");
        assert!(self.cs_range_m >= self.tx_range_m, "carrier-sense range must cover the tx range");
        assert!((0.0..=1.0).contains(&self.per_frame_loss), "loss probability must be in [0, 1]");
    }

    /// Total decode-side mirror of [`Self::validate`] for snapshot restore.
    fn is_consistent(&self) -> bool {
        self.data_rate_bps > 0
            && self.basic_rate_bps > 0
            && self.tx_range_m > 0.0
            && self.cs_range_m >= self.tx_range_m
            && (0.0..=1.0).contains(&self.per_frame_loss)
    }

    /// Airtime of a DATA frame of `bytes` bytes (PLCP + payload at the data
    /// rate).
    pub fn data_tx_time(&self, bytes: u32) -> SimDuration {
        self.plcp_overhead + SimDuration::for_bits(u64::from(bytes) * 8, self.data_rate_bps)
    }

    /// Airtime of a control frame of `bytes` bytes (PLCP + payload at the
    /// basic rate).
    pub fn control_tx_time(&self, bytes: u32) -> SimDuration {
        self.plcp_overhead + SimDuration::for_bits(u64::from(bytes) * 8, self.basic_rate_bps)
    }

    /// Propagation delay over `distance_m` metres at the speed of light.
    pub fn propagation_delay(distance_m: f64) -> SimDuration {
        const C: f64 = 299_792_458.0;
        SimDuration::from_secs_f64(distance_m.max(0.0) / C)
    }

    /// Relative received power at `distance_m`, using the two-ray-ground
    /// `1/d⁴` law normalised to 1.0 at the edge of the transmission range
    /// (absolute scale is irrelevant — the capture model only compares
    /// ratios). A frame from 250 m is 16× stronger than interference from
    /// 500 m, which clears the 10× capture threshold, exactly as in ns-2.
    pub fn rx_power(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        (self.tx_range_m / d).powi(4)
    }
}

impl sim_core::Snapshotable for RadioParams {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.data_rate_bps);
        w.put_u64(self.basic_rate_bps);
        w.put(&self.plcp_overhead);
        w.put_f64(self.tx_range_m);
        w.put_f64(self.cs_range_m);
        w.put_f64(self.per_frame_loss);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let p = RadioParams {
            data_rate_bps: r.take_u64()?,
            basic_rate_bps: r.take_u64()?,
            plcp_overhead: r.get()?,
            tx_range_m: r.take_f64()?,
            cs_range_m: r.take_f64()?,
            per_frame_loss: r.take_f64()?,
        };
        if !p.is_consistent() {
            return Err(sim_core::SnapError::Invalid("radio params"));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = RadioParams::default();
        p.validate();
        assert_eq!(p.data_rate_bps, 2_000_000);
        assert_eq!(p.tx_range_m, 250.0);
    }

    #[test]
    fn tx_times() {
        let p = RadioParams::default();
        // 20-byte RTS at 1 Mbps = 160 us + 192 us PLCP.
        assert_eq!(p.control_tx_time(20).as_micros(), 352);
        // 1534 bytes at 2 Mbps = 6136 us + 192 us PLCP.
        assert_eq!(p.data_tx_time(1534).as_micros(), 6328);
    }

    #[test]
    fn propagation() {
        let d = RadioParams::propagation_delay(250.0);
        // 250 m / c ≈ 834 ns.
        assert!(d.as_nanos() > 800 && d.as_nanos() < 900, "{}", d.as_nanos());
        assert_eq!(RadioParams::propagation_delay(-5.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "carrier-sense range")]
    fn inverted_ranges_rejected() {
        let p = RadioParams { cs_range_m: 100.0, ..RadioParams::default() };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bad_loss_rejected() {
        let p = RadioParams { per_frame_loss: 1.5, ..RadioParams::default() };
        p.validate();
    }
}
