//! Per-node PHY reception state machine.

use sim_core::SimTime;

/// Identifies one over-the-air transmission (one frame, all its receivers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// The result of a completed reception.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxOutcome {
    /// The frame arrived intact and can be handed to the MAC.
    Decoded,
    /// The frame overlapped another signal at this receiver (or the receiver
    /// was transmitting) and was corrupted.
    CollisionLost,
    /// The signal was sensed (energy) but was never decodable here: sender
    /// out of tx range, or the frame was corrupted by random channel error.
    NotDecodable,
}

#[derive(Clone, Copy, Debug)]
struct Reception {
    tx_id: TxId,
    decodable: bool,
    corrupted: bool,
    power: f64,
}

/// The radio state of one node: whether it is transmitting, which signals
/// currently impinge on it, and whether its carrier-sense reports busy.
///
/// The collision model includes *capture*, mirroring ns-2's wireless PHY:
/// when two signals overlap at a receiver, the earlier one survives if it is
/// at least `capture_ratio` times stronger than the newcomer (the receiver
/// stays locked on); a newcomer that much stronger than the current signal
/// corrupts both (the receiver cannot re-lock mid-frame); comparable powers
/// corrupt both. A node that is transmitting cannot decode anything
/// (half duplex).
///
/// # Example
///
/// ```
/// use phy::{PhyState, RxOutcome, TxId};
/// use sim_core::SimTime;
///
/// let mut phy = PhyState::new();
/// let t0 = SimTime::from_nanos(0);
/// let t1 = SimTime::from_nanos(1_000);
/// phy.on_rx_start(TxId(1), t0, t1, true, 1.0);
/// assert!(phy.carrier_busy(t0));
/// assert_eq!(phy.on_rx_end(TxId(1), t1), RxOutcome::Decoded);
/// assert!(!phy.carrier_busy(t1));
/// ```
#[derive(Clone, Debug)]
pub struct PhyState {
    transmitting_until: Option<SimTime>,
    receptions: Vec<Reception>,
    /// Latest instant at which any sensed signal (decodable or not) ends.
    energy_until: SimTime,
    /// Power ratio above which the stronger frame survives an overlap
    /// (ns-2's `CPThresh_`, 10 = 10 dB).
    capture_ratio: f64,
}

impl Default for PhyState {
    fn default() -> Self {
        PhyState {
            transmitting_until: None,
            receptions: Vec::new(),
            energy_until: SimTime::ZERO,
            capture_ratio: 10.0,
        }
    }
}

impl PhyState {
    /// Creates an idle radio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the node as transmitting until `until`.
    ///
    /// Any reception in progress is corrupted (the radio is half duplex).
    ///
    /// # Panics
    ///
    /// Panics if the node is already transmitting — the MAC must serialise
    /// its own transmissions.
    pub fn begin_transmit(&mut self, now: SimTime, until: SimTime) {
        assert!(!self.is_transmitting(now), "PHY asked to transmit while already transmitting");
        for r in &mut self.receptions {
            r.corrupted = true;
        }
        self.transmitting_until = Some(until);
    }

    /// Whether the node's own transmission is still on the air.
    pub fn is_transmitting(&self, now: SimTime) -> bool {
        self.transmitting_until.is_some_and(|t| now < t)
    }

    /// Registers the start of an incoming signal with relative received
    /// `power` (any consistent unit; only ratios matter).
    ///
    /// `decodable` is false when the sender is out of tx range or the frame
    /// was corrupted by random channel error; such signals still interfere.
    /// Capture rule per overlapping pair (ns-2 semantics): the ongoing
    /// reception survives a newcomer weaker by at least the capture ratio;
    /// any other overlap corrupts both.
    pub fn on_rx_start(
        &mut self,
        tx_id: TxId,
        now: SimTime,
        end: SimTime,
        decodable: bool,
        power: f64,
    ) {
        let corrupted_by_tx = self.is_transmitting(now);
        let mut new_corrupted = corrupted_by_tx;
        for r in &mut self.receptions {
            if r.power >= power * self.capture_ratio {
                // Receiver stays locked on the clearly stronger signal;
                // the weak newcomer is lost, the current frame survives.
                new_corrupted = true;
            } else {
                // Comparable power, or a late stronger arrival: the
                // receiver cannot separate them — both are lost.
                r.corrupted = true;
                new_corrupted = true;
            }
        }
        self.receptions.push(Reception { tx_id, decodable, corrupted: new_corrupted, power });
        self.energy_until = self.energy_until.max(end);
    }

    /// Completes a reception and reports its outcome.
    ///
    /// # Panics
    ///
    /// Panics if `tx_id` does not match a registered reception (an event
    /// plumbing bug).
    pub fn on_rx_end(&mut self, tx_id: TxId, _now: SimTime) -> RxOutcome {
        let idx = self
            .receptions
            .iter()
            .position(|r| r.tx_id == tx_id)
            .expect("rx end without matching rx start");
        let r = self.receptions.swap_remove(idx);
        if !r.decodable {
            RxOutcome::NotDecodable
        } else if r.corrupted {
            RxOutcome::CollisionLost
        } else {
            RxOutcome::Decoded
        }
    }

    /// Physical carrier sense: busy while transmitting or while any sensed
    /// signal is on the air.
    pub fn carrier_busy(&self, now: SimTime) -> bool {
        self.is_transmitting(now) || !self.receptions.is_empty() || now < self.energy_until
    }

    /// The earliest instant at which the medium could be idle again given
    /// current knowledge (own tx end vs. sensed energy end).
    pub fn idle_at(&self, now: SimTime) -> SimTime {
        let tx_end = self.transmitting_until.filter(|&t| t > now).unwrap_or(now);
        tx_end.max(self.energy_until).max(now)
    }

    /// Number of signals currently impinging on this node (test/diagnostic).
    pub fn active_receptions(&self) -> usize {
        self.receptions.len()
    }
}

impl sim_core::Snapshotable for TxId {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(TxId(r.take_u64()?))
    }
}

impl sim_core::Snapshotable for Reception {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.tx_id);
        w.put_bool(self.decodable);
        w.put_bool(self.corrupted);
        w.put_f64(self.power);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Reception {
            tx_id: r.get()?,
            decodable: r.take_bool()?,
            corrupted: r.take_bool()?,
            power: r.take_f64()?,
        })
    }
}

impl sim_core::Snapshotable for PhyState {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.transmitting_until);
        w.put(&self.receptions);
        w.put(&self.energy_until);
        w.put_f64(self.capture_ratio);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(PhyState {
            transmitting_until: r.get()?,
            receptions: r.get()?,
            energy_until: r.get()?,
            capture_ratio: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn clean_reception_decodes() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        assert_eq!(phy.active_receptions(), 1);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::Decoded);
        assert_eq!(phy.active_receptions(), 0);
    }

    #[test]
    fn overlapping_receptions_collide() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.on_rx_start(TxId(2), t(50), t(150), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::CollisionLost);
        assert_eq!(phy.on_rx_end(TxId(2), t(150)), RxOutcome::CollisionLost);
    }

    #[test]
    fn interference_from_undecodable_signal_still_corrupts() {
        let mut phy = PhyState::new();
        // A far-away (carrier-sense-only) signal...
        phy.on_rx_start(TxId(1), t(0), t(100), false, 1.0);
        // ...overlaps a frame we would otherwise decode.
        phy.on_rx_start(TxId(2), t(10), t(90), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(2), t(90)), RxOutcome::CollisionLost);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::NotDecodable);
    }

    #[test]
    fn sequential_receptions_both_decode() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::Decoded);
        phy.on_rx_start(TxId(2), t(100), t(200), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(2), t(200)), RxOutcome::Decoded);
    }

    #[test]
    fn transmission_corrupts_concurrent_reception() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.begin_transmit(t(10), t(50));
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::CollisionLost);
    }

    #[test]
    fn reception_starting_during_tx_is_lost() {
        let mut phy = PhyState::new();
        phy.begin_transmit(t(0), t(100));
        phy.on_rx_start(TxId(1), t(50), t(150), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(150)), RxOutcome::CollisionLost);
    }

    #[test]
    fn reception_after_tx_ends_is_fine() {
        let mut phy = PhyState::new();
        phy.begin_transmit(t(0), t(100));
        phy.on_rx_start(TxId(1), t(100), t(200), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(200)), RxOutcome::Decoded);
    }

    #[test]
    fn random_loss_is_not_decodable() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), false, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::NotDecodable);
    }

    #[test]
    fn carrier_sense_tracks_energy() {
        let mut phy = PhyState::new();
        assert!(!phy.carrier_busy(t(0)));
        phy.on_rx_start(TxId(1), t(0), t(100), false, 1.0);
        assert!(phy.carrier_busy(t(50)));
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::NotDecodable);
        assert!(!phy.carrier_busy(t(100)));
        assert_eq!(phy.idle_at(t(100)), t(100));
    }

    #[test]
    fn idle_at_accounts_for_tx_and_energy() {
        let mut phy = PhyState::new();
        phy.begin_transmit(t(0), t(100));
        assert_eq!(phy.idle_at(t(10)), t(100));
        phy.on_rx_start(TxId(1), t(20), t(150), false, 1.0);
        assert_eq!(phy.idle_at(t(30)), t(150));
        let _ = phy.on_rx_end(TxId(1), t(150));
        assert_eq!(phy.idle_at(t(200)), t(200));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_transmit_panics() {
        let mut phy = PhyState::new();
        phy.begin_transmit(t(0), t(100));
        phy.begin_transmit(t(10), t(50));
    }

    #[test]
    #[should_panic(expected = "without matching rx start")]
    fn unmatched_rx_end_panics() {
        let mut phy = PhyState::new();
        let _ = phy.on_rx_end(TxId(9), t(0));
    }

    #[test]
    fn three_way_collision() {
        let mut phy = PhyState::new();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.on_rx_start(TxId(2), t(10), t(110), true, 1.0);
        phy.on_rx_start(TxId(3), t(20), t(120), true, 1.0);
        for (id, end) in [(1, 100), (2, 110), (3, 120)] {
            assert_eq!(phy.on_rx_end(TxId(id), t(end)), RxOutcome::CollisionLost);
        }
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn strong_first_frame_survives_weak_interference() {
        let mut phy = PhyState::default();
        // Neighbour at 250 m (power 1.0) vs interferer at 500 m (1/16).
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.on_rx_start(TxId(2), t(10), t(110), false, 1.0 / 16.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::Decoded, "captured");
        assert_eq!(phy.on_rx_end(TxId(2), t(110)), RxOutcome::NotDecodable);
    }

    #[test]
    fn weak_frame_lost_to_strong_ongoing() {
        let mut phy = PhyState::default();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 16.0);
        phy.on_rx_start(TxId(2), t(10), t(110), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::Decoded);
        assert_eq!(phy.on_rx_end(TxId(2), t(110)), RxOutcome::CollisionLost);
    }

    #[test]
    fn late_strong_arrival_kills_both() {
        let mut phy = PhyState::default();
        // Receiver locked onto the weak frame; a much stronger late frame
        // cannot be re-locked onto: both are lost (ns-2 semantics).
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.on_rx_start(TxId(2), t(10), t(110), true, 16.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::CollisionLost);
        assert_eq!(phy.on_rx_end(TxId(2), t(110)), RxOutcome::CollisionLost);
    }

    #[test]
    fn comparable_powers_collide() {
        let mut phy = PhyState::default();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 1.0);
        phy.on_rx_start(TxId(2), t(10), t(110), true, 2.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::CollisionLost);
        assert_eq!(phy.on_rx_end(TxId(2), t(110)), RxOutcome::CollisionLost);
    }

    #[test]
    fn exactly_at_threshold_captures() {
        let mut phy = PhyState::default();
        phy.on_rx_start(TxId(1), t(0), t(100), true, 10.0);
        phy.on_rx_start(TxId(2), t(10), t(110), true, 1.0);
        assert_eq!(phy.on_rx_end(TxId(1), t(100)), RxOutcome::Decoded);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any schedule of receptions: at most one frame in any overlapping
        /// group decodes, and a frame decodes only if it overlapped nothing.
        #[test]
        fn no_capture_invariant(
            frames in proptest::collection::vec((0u64..1000, 1u64..500), 1..20)
        ) {
            // Build (start, end) intervals and replay them in start order.
            let mut intervals: Vec<(u64, u64)> =
                frames.iter().map(|&(s, d)| (s, s + d)).collect();
            intervals.sort_unstable();
            let mut phy = PhyState::new();
            // Interleave starts and ends in global time order.
            let mut evs: Vec<(u64, usize, bool)> = Vec::new(); // (time, idx, is_start)
            for (i, &(s, e)) in intervals.iter().enumerate() {
                evs.push((s, i, true));
                evs.push((e, i, false));
            }
            // Ends before starts at the same instant (back-to-back frames don't collide).
            evs.sort_by_key(|&(time, idx, is_start)| (time, is_start, idx));
            let mut outcome = vec![None; intervals.len()];
            for (time, idx, is_start) in evs {
                if is_start {
                    phy.on_rx_start(TxId(idx as u64), SimTime::from_nanos(time),
                        SimTime::from_nanos(intervals[idx].1), true, 1.0);
                } else {
                    outcome[idx] = Some(phy.on_rx_end(TxId(idx as u64), SimTime::from_nanos(time)));
                }
            }
            for (i, &(s1, e1)) in intervals.iter().enumerate() {
                let overlaps_any = intervals.iter().enumerate().any(|(j, &(s2, e2))| {
                    i != j && s1 < e2 && s2 < e1
                });
                match outcome[i].unwrap() {
                    RxOutcome::Decoded => prop_assert!(!overlaps_any,
                        "frame {i} decoded despite overlap"),
                    RxOutcome::CollisionLost => prop_assert!(overlaps_any,
                        "frame {i} lost without overlap"),
                    RxOutcome::NotDecodable => unreachable!(),
                }
            }
        }
    }
}
