//! The shared radio channel: who hears whom.

use sim_core::DetSet;
use wire::NodeId;

use crate::{Position, RadioParams};

/// The radio channel connecting all nodes.
///
/// Precomputes, for every node, the set of nodes inside its transmission
/// range (potential receivers) and inside its carrier-sense range (nodes
/// whose medium it occupies). Positions can be updated (mobility hook), which
/// recomputes the adjacency.
///
/// # Example
///
/// ```
/// use phy::{Channel, Position, RadioParams};
/// use wire::NodeId;
///
/// // A 3-node chain at 250 m spacing: 0 and 2 can't hear each other.
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(250.0, 0.0),
///     Position::new(500.0, 0.0),
/// ];
/// let ch = Channel::new(positions, RadioParams::default());
/// assert!(ch.in_rx_range(NodeId::new(0), NodeId::new(1)));
/// assert!(!ch.in_rx_range(NodeId::new(0), NodeId::new(2)));
/// // ...but node 0's transmissions are *sensed* at node 2 (inside 550 m).
/// assert!(ch.in_cs_range(NodeId::new(0), NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Channel {
    params: RadioParams,
    positions: Vec<Position>,
    rx_neighbors: Vec<Vec<NodeId>>,
    cs_neighbors: Vec<Vec<NodeId>>,
    /// Fault-injection: radios administratively switched off (killed nodes).
    disabled: Vec<bool>,
    /// Fault-injection: individual links forced down, stored as normalised
    /// `(min, max)` pairs so `a—b` and `b—a` are the same link.
    blocked: DetSet<(NodeId, NodeId)>,
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Channel {
    /// Creates a channel for nodes at the given positions.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent (see [`RadioParams::validate`]).
    pub fn new(positions: Vec<Position>, params: RadioParams) -> Self {
        params.validate();
        let disabled = vec![false; positions.len()];
        let mut ch = Channel {
            params,
            positions,
            rx_neighbors: Vec::new(),
            cs_neighbors: Vec::new(),
            disabled,
            blocked: DetSet::new(),
        };
        ch.recompute();
        ch
    }

    /// Number of nodes attached to the channel.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The radio parameters.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// A node's position.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Moves a node and recomputes adjacency (mobility hook).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_position(&mut self, node: NodeId, position: Position) {
        self.positions[node.index()] = position;
        self.recompute();
    }

    /// Nodes that can *decode* transmissions from `node` (inside tx range),
    /// excluding the node itself.
    pub fn rx_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.rx_neighbors[node.index()]
    }

    /// Nodes that *sense* transmissions from `node` (inside carrier-sense
    /// range — a superset of [`Self::rx_neighbors`]), excluding the node
    /// itself.
    pub fn cs_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.cs_neighbors[node.index()]
    }

    /// Whether `b` can decode `a`'s transmissions.
    pub fn in_rx_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.link_usable(a, b) && self.distance(a, b) <= self.params.tx_range_m
    }

    /// Whether `b` senses `a`'s transmissions.
    pub fn in_cs_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.link_usable(a, b) && self.distance(a, b) <= self.params.cs_range_m
    }

    /// Administratively enables or disables a node's radio (fault hook: a
    /// disabled node neither transmits into, nor receives or senses from,
    /// the channel). Recomputes adjacency.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_node_enabled(&mut self, node: NodeId, enabled: bool) {
        self.disabled[node.index()] = !enabled;
        self.recompute();
    }

    /// Whether a node's radio is administratively enabled.
    pub fn is_node_enabled(&self, node: NodeId) -> bool {
        !self.disabled[node.index()]
    }

    /// Forces the (bidirectional) link between `a` and `b` down or back up,
    /// independent of geometry (fault hook: scripted link flaps). Recomputes
    /// adjacency.
    pub fn set_link_blocked(&mut self, a: NodeId, b: NodeId, blocked: bool) {
        if blocked {
            self.blocked.insert(link_key(a, b));
        } else {
            self.blocked.remove(&link_key(a, b));
        }
        self.recompute();
    }

    /// Whether the `a`—`b` link is currently forced down.
    pub fn is_link_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&link_key(a, b))
    }

    fn link_usable(&self, a: NodeId, b: NodeId) -> bool {
        !self.disabled[a.index()]
            && !self.disabled[b.index()]
            && !self.blocked.contains(&link_key(a, b))
    }

    /// Distance between two nodes in metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance_to(self.positions[b.index()])
    }

    fn recompute(&mut self) {
        let n = self.positions.len();
        self.rx_neighbors = vec![Vec::new(); n];
        self.cs_neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j || self.disabled[i] || self.disabled[j] {
                    continue;
                }
                let (a, b) = (NodeId::new(i as u16), NodeId::new(j as u16));
                if self.blocked.contains(&link_key(a, b)) {
                    continue;
                }
                let d = self.positions[i].distance_to(self.positions[j]);
                if d <= self.params.tx_range_m {
                    self.rx_neighbors[a.index()].push(b);
                }
                if d <= self.params.cs_range_m {
                    self.cs_neighbors[a.index()].push(b);
                }
            }
        }
    }
}

impl sim_core::Snapshotable for Channel {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        // The rx/cs adjacency lists are derived caches: recomputed on
        // decode from positions + params + fault state.
        w.put(&self.params);
        w.put(&self.positions);
        w.put(&self.disabled);
        w.put(&self.blocked);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let params: RadioParams = r.get()?;
        let positions: Vec<Position> = r.get()?;
        let disabled: Vec<bool> = r.get()?;
        let blocked: DetSet<(NodeId, NodeId)> = r.get()?;
        if disabled.len() != positions.len() {
            return Err(sim_core::SnapError::Invalid("channel disabled-flag count"));
        }
        if positions.len() >= usize::from(u16::MAX) {
            return Err(sim_core::SnapError::Invalid("channel node count"));
        }
        let mut ch = Channel {
            params,
            positions,
            rx_neighbors: Vec::new(),
            cs_neighbors: Vec::new(),
            disabled,
            blocked,
        };
        ch.recompute();
        Ok(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn chain(count: usize, spacing: f64) -> Channel {
        let positions = (0..count).map(|i| Position::new(i as f64 * spacing, 0.0)).collect();
        Channel::new(positions, RadioParams::default())
    }

    #[test]
    fn chain_adjacency() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.node_count(), 5);
        // Node 2 decodes only 1 and 3.
        assert_eq!(ch.rx_neighbors(n(2)), &[n(1), n(3)]);
        // ...but senses 0, 1, 3, 4 (500 m <= 550 m).
        assert_eq!(ch.cs_neighbors(n(2)), &[n(0), n(1), n(3), n(4)]);
    }

    #[test]
    fn endpoints_have_fewer_neighbors() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.rx_neighbors(n(0)), &[n(1)]);
        assert_eq!(ch.cs_neighbors(n(0)), &[n(1), n(2)]);
    }

    #[test]
    fn symmetry() {
        let ch = chain(6, 250.0);
        for i in 0..6u16 {
            for j in 0..6u16 {
                if i != j {
                    assert_eq!(ch.in_rx_range(n(i), n(j)), ch.in_rx_range(n(j), n(i)));
                    assert_eq!(ch.in_cs_range(n(i), n(j)), ch.in_cs_range(n(j), n(i)));
                }
            }
        }
    }

    #[test]
    fn rx_implies_cs() {
        let ch = chain(8, 200.0);
        for i in 0..8u16 {
            for &j in ch.rx_neighbors(n(i)) {
                assert!(ch.in_cs_range(n(i), j));
            }
        }
    }

    #[test]
    fn mobility_recomputes() {
        let mut ch = chain(3, 250.0);
        assert!(!ch.in_rx_range(n(0), n(2)));
        ch.set_position(n(2), Position::new(200.0, 0.0));
        assert!(ch.in_rx_range(n(0), n(2)));
        assert_eq!(ch.position(n(2)), Position::new(200.0, 0.0));
    }

    #[test]
    fn disabling_a_node_removes_it_from_the_air() {
        let mut ch = chain(3, 250.0);
        ch.set_node_enabled(n(1), false);
        assert!(!ch.is_node_enabled(n(1)));
        assert!(!ch.in_rx_range(n(0), n(1)));
        assert!(!ch.in_cs_range(n(1), n(2)));
        assert!(ch.rx_neighbors(n(0)).is_empty());
        assert!(ch.rx_neighbors(n(1)).is_empty());
        ch.set_node_enabled(n(1), true);
        assert!(ch.in_rx_range(n(0), n(1)));
        assert_eq!(ch.rx_neighbors(n(0)), &[n(1)]);
    }

    #[test]
    fn blocking_a_link_is_bidirectional_and_reversible() {
        let mut ch = chain(3, 250.0);
        ch.set_link_blocked(n(2), n(1), true);
        assert!(ch.is_link_blocked(n(1), n(2)));
        assert!(!ch.in_rx_range(n(1), n(2)));
        assert!(!ch.in_rx_range(n(2), n(1)));
        // The other link is untouched.
        assert!(ch.in_rx_range(n(0), n(1)));
        assert_eq!(ch.rx_neighbors(n(1)), &[n(0)]);
        ch.set_link_blocked(n(1), n(2), false);
        assert_eq!(ch.rx_neighbors(n(1)), &[n(0), n(2)]);
    }

    #[test]
    fn faults_survive_mobility_recompute() {
        let mut ch = chain(3, 250.0);
        ch.set_link_blocked(n(0), n(1), true);
        ch.set_position(n(2), Position::new(400.0, 0.0));
        assert!(!ch.in_rx_range(n(0), n(1)), "block must survive recompute");
    }

    #[test]
    fn node_never_its_own_neighbor() {
        let ch = chain(4, 100.0);
        for i in 0..4u16 {
            assert!(!ch.rx_neighbors(n(i)).contains(&n(i)));
            assert!(!ch.in_rx_range(n(i), n(i)));
        }
    }
}
