//! The shared radio channel: who hears whom.

use wire::NodeId;

use crate::{Position, RadioParams};

/// The radio channel connecting all nodes.
///
/// Precomputes, for every node, the set of nodes inside its transmission
/// range (potential receivers) and inside its carrier-sense range (nodes
/// whose medium it occupies). Positions can be updated (mobility hook), which
/// recomputes the adjacency.
///
/// # Example
///
/// ```
/// use phy::{Channel, Position, RadioParams};
/// use wire::NodeId;
///
/// // A 3-node chain at 250 m spacing: 0 and 2 can't hear each other.
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(250.0, 0.0),
///     Position::new(500.0, 0.0),
/// ];
/// let ch = Channel::new(positions, RadioParams::default());
/// assert!(ch.in_rx_range(NodeId::new(0), NodeId::new(1)));
/// assert!(!ch.in_rx_range(NodeId::new(0), NodeId::new(2)));
/// // ...but node 0's transmissions are *sensed* at node 2 (inside 550 m).
/// assert!(ch.in_cs_range(NodeId::new(0), NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Channel {
    params: RadioParams,
    positions: Vec<Position>,
    rx_neighbors: Vec<Vec<NodeId>>,
    cs_neighbors: Vec<Vec<NodeId>>,
}

impl Channel {
    /// Creates a channel for nodes at the given positions.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent (see [`RadioParams::validate`]).
    pub fn new(positions: Vec<Position>, params: RadioParams) -> Self {
        params.validate();
        let mut ch =
            Channel { params, positions, rx_neighbors: Vec::new(), cs_neighbors: Vec::new() };
        ch.recompute();
        ch
    }

    /// Number of nodes attached to the channel.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The radio parameters.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// A node's position.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Moves a node and recomputes adjacency (mobility hook).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_position(&mut self, node: NodeId, position: Position) {
        self.positions[node.index()] = position;
        self.recompute();
    }

    /// Nodes that can *decode* transmissions from `node` (inside tx range),
    /// excluding the node itself.
    pub fn rx_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.rx_neighbors[node.index()]
    }

    /// Nodes that *sense* transmissions from `node` (inside carrier-sense
    /// range — a superset of [`Self::rx_neighbors`]), excluding the node
    /// itself.
    pub fn cs_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.cs_neighbors[node.index()]
    }

    /// Whether `b` can decode `a`'s transmissions.
    pub fn in_rx_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.params.tx_range_m
    }

    /// Whether `b` senses `a`'s transmissions.
    pub fn in_cs_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.params.cs_range_m
    }

    /// Distance between two nodes in metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance_to(self.positions[b.index()])
    }

    fn recompute(&mut self) {
        let n = self.positions.len();
        self.rx_neighbors = vec![Vec::new(); n];
        self.cs_neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = self.positions[i].distance_to(self.positions[j]);
                let (a, b) = (NodeId::new(i as u16), NodeId::new(j as u16));
                if d <= self.params.tx_range_m {
                    self.rx_neighbors[a.index()].push(b);
                }
                if d <= self.params.cs_range_m {
                    self.cs_neighbors[a.index()].push(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn chain(count: usize, spacing: f64) -> Channel {
        let positions = (0..count).map(|i| Position::new(i as f64 * spacing, 0.0)).collect();
        Channel::new(positions, RadioParams::default())
    }

    #[test]
    fn chain_adjacency() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.node_count(), 5);
        // Node 2 decodes only 1 and 3.
        assert_eq!(ch.rx_neighbors(n(2)), &[n(1), n(3)]);
        // ...but senses 0, 1, 3, 4 (500 m <= 550 m).
        assert_eq!(ch.cs_neighbors(n(2)), &[n(0), n(1), n(3), n(4)]);
    }

    #[test]
    fn endpoints_have_fewer_neighbors() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.rx_neighbors(n(0)), &[n(1)]);
        assert_eq!(ch.cs_neighbors(n(0)), &[n(1), n(2)]);
    }

    #[test]
    fn symmetry() {
        let ch = chain(6, 250.0);
        for i in 0..6u16 {
            for j in 0..6u16 {
                if i != j {
                    assert_eq!(ch.in_rx_range(n(i), n(j)), ch.in_rx_range(n(j), n(i)));
                    assert_eq!(ch.in_cs_range(n(i), n(j)), ch.in_cs_range(n(j), n(i)));
                }
            }
        }
    }

    #[test]
    fn rx_implies_cs() {
        let ch = chain(8, 200.0);
        for i in 0..8u16 {
            for &j in ch.rx_neighbors(n(i)) {
                assert!(ch.in_cs_range(n(i), j));
            }
        }
    }

    #[test]
    fn mobility_recomputes() {
        let mut ch = chain(3, 250.0);
        assert!(!ch.in_rx_range(n(0), n(2)));
        ch.set_position(n(2), Position::new(200.0, 0.0));
        assert!(ch.in_rx_range(n(0), n(2)));
        assert_eq!(ch.position(n(2)), Position::new(200.0, 0.0));
    }

    #[test]
    fn node_never_its_own_neighbor() {
        let ch = chain(4, 100.0);
        for i in 0..4u16 {
            assert!(!ch.rx_neighbors(n(i)).contains(&n(i)));
            assert!(!ch.in_rx_range(n(i), n(i)));
        }
    }
}
