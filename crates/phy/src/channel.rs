//! The shared radio channel: who hears whom.

use sim_core::DetSet;
use topo::SpatialGrid;
use wire::NodeId;

use crate::{IndexKind, Position, RadioParams};

/// The radio channel connecting all nodes.
///
/// Precomputes, for every node, the set of nodes inside its transmission
/// range (potential receivers) and inside its carrier-sense range (nodes
/// whose medium it occupies). Positions can be updated (mobility hook), which
/// updates the adjacency.
///
/// Two interchangeable position indexes back the adjacency maintenance
/// ([`IndexKind`]): the default spatial grid visits only the moved node's
/// candidate cells, while the brute-force reference re-scans all pairs.
/// Both produce identical neighbor rows (the grid's candidate sets are
/// supersets filtered by the *same* squared-distance predicate, collected
/// in the same ascending node order), so the choice never changes a trace.
///
/// # Example
///
/// ```
/// use phy::{Channel, Position, RadioParams};
/// use wire::NodeId;
///
/// // A 3-node chain at 250 m spacing: 0 and 2 can't hear each other.
/// let positions = vec![
///     Position::new(0.0, 0.0),
///     Position::new(250.0, 0.0),
///     Position::new(500.0, 0.0),
/// ];
/// let ch = Channel::new(positions, RadioParams::default());
/// assert!(ch.in_rx_range(NodeId::new(0), NodeId::new(1)));
/// assert!(!ch.in_rx_range(NodeId::new(0), NodeId::new(2)));
/// // ...but node 0's transmissions are *sensed* at node 2 (inside 550 m).
/// assert!(ch.in_cs_range(NodeId::new(0), NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Channel {
    params: RadioParams,
    positions: Vec<Position>,
    rx_neighbors: Vec<Vec<NodeId>>,
    cs_neighbors: Vec<Vec<NodeId>>,
    /// Fault-injection: radios administratively switched off (killed nodes).
    disabled: Vec<bool>,
    /// Fault-injection: individual links forced down, stored as normalised
    /// `(min, max)` pairs so `a—b` and `b—a` are the same link.
    blocked: DetSet<(NodeId, NodeId)>,
    /// Which maintenance strategy mutations use.
    index: IndexKind,
    /// Cell index over `positions`, cell side = carrier-sense range (the
    /// largest query radius), kept in sync in both index modes.
    grid: SpatialGrid,
    /// Scratch buffer for grid candidate collection.
    scratch: Vec<usize>,
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Size of the symmetric difference between two ascending-sorted rows.
fn row_diff(old: &[NodeId], new: &[NodeId]) -> usize {
    let mut churn = 0;
    let (mut oi, mut ni) = (0, 0);
    while oi < old.len() && ni < new.len() {
        if old[oi] == new[ni] {
            oi += 1;
            ni += 1;
        } else if old[oi] < new[ni] {
            churn += 1;
            oi += 1;
        } else {
            churn += 1;
            ni += 1;
        }
    }
    churn + (old.len() - oi) + (new.len() - ni)
}

/// Removes `node` from `peer`'s sorted row if present.
fn peer_remove(rows: &mut [Vec<NodeId>], peer: NodeId, node: NodeId) {
    let row = &mut rows[peer.index()];
    if let Ok(at) = row.binary_search(&node) {
        row.remove(at);
    }
}

/// Inserts `node` into `peer`'s sorted row if absent.
fn peer_insert(rows: &mut [Vec<NodeId>], peer: NodeId, node: NodeId) {
    let row = &mut rows[peer.index()];
    if let Err(at) = row.binary_search(&node) {
        row.insert(at, node);
    }
}

/// After `node`'s row changed from `old` to `new`, mirrors the delta onto
/// the affected peers' rows (adjacency is symmetric, so exactly the
/// added/removed peers need `node` inserted/removed). Returns the delta
/// size `|removed| + |added|`.
fn patch_peers(rows: &mut [Vec<NodeId>], node: NodeId, old: &[NodeId], new: &[NodeId]) -> usize {
    let mut churn = 0;
    let (mut oi, mut ni) = (0, 0);
    while oi < old.len() && ni < new.len() {
        if old[oi] == new[ni] {
            oi += 1;
            ni += 1;
        } else if old[oi] < new[ni] {
            peer_remove(rows, old[oi], node);
            churn += 1;
            oi += 1;
        } else {
            peer_insert(rows, new[ni], node);
            churn += 1;
            ni += 1;
        }
    }
    for &gone in &old[oi..] {
        peer_remove(rows, gone, node);
        churn += 1;
    }
    for &fresh in &new[ni..] {
        peer_insert(rows, fresh, node);
        churn += 1;
    }
    churn
}

impl Channel {
    /// Creates a channel for nodes at the given positions, using the
    /// default spatial-grid index.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent (see [`RadioParams::validate`]).
    pub fn new(positions: Vec<Position>, params: RadioParams) -> Self {
        Channel::with_index(positions, params, IndexKind::default())
    }

    /// Creates a channel with an explicit position-index strategy.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent (see [`RadioParams::validate`]).
    pub fn with_index(positions: Vec<Position>, params: RadioParams, index: IndexKind) -> Self {
        params.validate();
        let disabled = vec![false; positions.len()];
        let grid = SpatialGrid::new(params.cs_range_m, &positions);
        let mut ch = Channel {
            params,
            positions,
            rx_neighbors: Vec::new(),
            cs_neighbors: Vec::new(),
            disabled,
            blocked: DetSet::new(),
            index,
            grid,
            scratch: Vec::new(),
        };
        ch.recompute();
        ch
    }

    /// Number of nodes attached to the channel.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The radio parameters.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// Which position index backs adjacency maintenance.
    pub fn index(&self) -> IndexKind {
        self.index
    }

    /// A node's position.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Moves a node and updates adjacency (mobility hook). Returns the
    /// link churn: how many rx/cs entries of the moved node's own rows
    /// changed (peer rows mirror these symmetrically).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_position(&mut self, node: NodeId, position: Position) -> usize {
        self.positions[node.index()] = position;
        self.grid.set(node.index(), position);
        self.refresh(node)
    }

    /// Nodes that can *decode* transmissions from `node` (inside tx range),
    /// excluding the node itself.
    pub fn rx_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.rx_neighbors[node.index()]
    }

    /// Nodes that *sense* transmissions from `node` (inside carrier-sense
    /// range — a superset of [`Self::rx_neighbors`]), excluding the node
    /// itself.
    pub fn cs_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.cs_neighbors[node.index()]
    }

    /// Whether `b` can decode `a`'s transmissions.
    pub fn in_rx_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.link_usable(a, b) && self.distance_sq(a, b) <= sq(self.params.tx_range_m)
    }

    /// Whether `b` senses `a`'s transmissions.
    pub fn in_cs_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.link_usable(a, b) && self.distance_sq(a, b) <= sq(self.params.cs_range_m)
    }

    /// Administratively enables or disables a node's radio (fault hook: a
    /// disabled node neither transmits into, nor receives or senses from,
    /// the channel). Updates adjacency; returns the link churn as
    /// [`Self::set_position`] does.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_node_enabled(&mut self, node: NodeId, enabled: bool) -> usize {
        self.disabled[node.index()] = !enabled;
        self.refresh(node)
    }

    /// Whether a node's radio is administratively enabled.
    pub fn is_node_enabled(&self, node: NodeId) -> bool {
        !self.disabled[node.index()]
    }

    /// Forces the (bidirectional) link between `a` and `b` down or back up,
    /// independent of geometry (fault hook: scripted link flaps). Updates
    /// adjacency; returns the link churn as [`Self::set_position`] does.
    pub fn set_link_blocked(&mut self, a: NodeId, b: NodeId, blocked: bool) -> usize {
        if blocked {
            self.blocked.insert(link_key(a, b));
        } else {
            self.blocked.remove(&link_key(a, b));
        }
        self.refresh(a)
    }

    /// Whether the `a`—`b` link is currently forced down.
    pub fn is_link_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&link_key(a, b))
    }

    fn link_usable(&self, a: NodeId, b: NodeId) -> bool {
        !self.disabled[a.index()]
            && !self.disabled[b.index()]
            && !self.blocked.contains(&link_key(a, b))
    }

    /// Distance between two nodes in metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance_to(self.positions[b.index()])
    }

    fn distance_sq(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance_sq_to(self.positions[b.index()])
    }

    /// Builds node `i`'s rx/cs rows by filtering `candidates` (ascending
    /// node indices) through the one squared-distance predicate every code
    /// path shares — this is what makes grid and brute-force maintenance
    /// agree bit-for-bit.
    fn rows_for(&self, i: usize, candidates: &[usize]) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut rx = Vec::new();
        let mut cs = Vec::new();
        if self.disabled[i] {
            return (rx, cs);
        }
        let a = NodeId::new(i as u16);
        let tx_sq = sq(self.params.tx_range_m);
        let cs_sq = sq(self.params.cs_range_m);
        for &j in candidates {
            if j == i || self.disabled[j] {
                continue;
            }
            let b = NodeId::new(j as u16);
            if self.blocked.contains(&link_key(a, b)) {
                continue;
            }
            let d_sq = self.positions[i].distance_sq_to(self.positions[j]);
            if d_sq <= tx_sq {
                rx.push(b);
            }
            if d_sq <= cs_sq {
                cs.push(b);
            }
        }
        (rx, cs)
    }

    /// Full O(N²) adjacency rebuild (construction, decode, and every
    /// brute-force-mode mutation).
    fn recompute(&mut self) {
        let n = self.positions.len();
        let everyone: Vec<usize> = (0..n).collect();
        let mut rx_rows = Vec::with_capacity(n);
        let mut cs_rows = Vec::with_capacity(n);
        for i in 0..n {
            let (rx, cs) = self.rows_for(i, &everyone);
            rx_rows.push(rx);
            cs_rows.push(cs);
        }
        self.rx_neighbors = rx_rows;
        self.cs_neighbors = cs_rows;
    }

    /// Re-derives adjacency after a mutation that only affects pairs
    /// containing `node` (a move, enable/disable, or link block/unblock —
    /// all three predicates are symmetric and localised to such pairs).
    /// Returns the churn of `node`'s own rows.
    fn refresh(&mut self, node: NodeId) -> usize {
        let i = node.index();
        match self.index {
            IndexKind::BruteForce => {
                let old_rx = std::mem::take(&mut self.rx_neighbors[i]);
                let old_cs = std::mem::take(&mut self.cs_neighbors[i]);
                self.recompute();
                row_diff(&old_rx, &self.rx_neighbors[i]) + row_diff(&old_cs, &self.cs_neighbors[i])
            }
            IndexKind::Grid => {
                let mut candidates = std::mem::take(&mut self.scratch);
                self.grid.candidates(self.positions[i], &mut candidates);
                let (rx, cs) = self.rows_for(i, &candidates);
                self.scratch = candidates;
                let old_rx = std::mem::replace(&mut self.rx_neighbors[i], rx);
                let old_cs = std::mem::replace(&mut self.cs_neighbors[i], cs);
                // Split borrows: clone nothing, patch peers against the
                // freshly installed rows.
                let new_rx = std::mem::take(&mut self.rx_neighbors[i]);
                let new_cs = std::mem::take(&mut self.cs_neighbors[i]);
                let churn = patch_peers(&mut self.rx_neighbors, node, &old_rx, &new_rx)
                    + patch_peers(&mut self.cs_neighbors, node, &old_cs, &new_cs);
                self.rx_neighbors[i] = new_rx;
                self.cs_neighbors[i] = new_cs;
                churn
            }
        }
    }
}

fn sq(r: f64) -> f64 {
    r * r
}

/// A batch of staged position updates for the sharded driver's
/// plan/commit split.
///
/// The conservative scheduler batches the mobility ticks that fall inside
/// one safe window, *plans* every mover's new neighbor rows in parallel
/// ([`Channel::plan_move`], pure), then *commits* them one at a time in
/// the serial pop order ([`Channel::apply_move`]). Planning for rank `r`
/// sees earlier movers (rank `< r`) at their destinations and later movers
/// at their original positions — exactly the state the serial scheduler
/// would present — so the committed rows and churn are bit-identical to
/// sequential [`Channel::set_position`] calls.
#[derive(Debug, Default, Clone)]
pub struct PendingMoves {
    /// `(node index, destination)` in commit (rank) order.
    moves: Vec<(usize, Position)>,
    /// `node → rank`, sorted by node. Built by [`Channel::seal_moves`].
    by_node: Vec<(usize, u32)>,
    /// `(destination cell, rank)`, sorted. Built by [`Channel::seal_moves`].
    dest_cells: Vec<((i64, i64), u32)>,
    sealed: bool,
}

impl PendingMoves {
    /// An empty batch.
    pub fn new() -> Self {
        PendingMoves::default()
    }

    /// Drops all staged moves, ready for the next batch.
    pub fn clear(&mut self) {
        self.moves.clear();
        self.by_node.clear();
        self.dest_cells.clear();
        self.sealed = false;
    }

    /// Stages `node`'s move to `to` as the next rank. Each node may appear
    /// at most once per batch (checked at seal time).
    ///
    /// # Panics
    ///
    /// Panics if the batch is already sealed.
    pub fn stage(&mut self, node: NodeId, to: Position) {
        assert!(!self.sealed, "cannot stage into a sealed batch");
        self.moves.push((node.index(), to));
    }

    /// Number of staged moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The mover at `rank`.
    pub fn node_at(&self, rank: usize) -> NodeId {
        NodeId::new(self.moves[rank].0 as u16)
    }

    /// The destination of the mover at `rank`.
    pub fn target_at(&self, rank: usize) -> Position {
        self.moves[rank].1
    }

    /// The rank at which `node` moves, if staged.
    fn rank_of(&self, node: usize) -> Option<u32> {
        self.by_node.binary_search_by_key(&node, |&(n, _)| n).ok().map(|at| self.by_node[at].1)
    }
}

impl Channel {
    /// Finalizes a staged batch: indexes movers by node and by destination
    /// cell so [`Self::plan_move`] can run per rank in parallel.
    ///
    /// # Panics
    ///
    /// Panics if a node was staged more than once.
    pub fn seal_moves(&self, pending: &mut PendingMoves) {
        pending.by_node = pending
            .moves
            .iter()
            .enumerate()
            .map(|(rank, &(node, _))| (node, rank as u32))
            .collect();
        pending.by_node.sort_unstable();
        for w in pending.by_node.windows(2) {
            assert!(w[0].0 != w[1].0, "node staged twice in one batch");
        }
        pending.dest_cells = pending
            .moves
            .iter()
            .enumerate()
            .map(|(rank, &(_, to))| (self.grid.cell_of(to), rank as u32))
            .collect();
        pending.dest_cells.sort_unstable();
        pending.sealed = true;
    }

    /// The position of `node` as the mover at `rank` observes it: earlier
    /// movers are already at their destinations, everyone else (later
    /// movers included) still sits at the pre-batch position.
    fn overlay_pos(&self, pending: &PendingMoves, rank: usize, node: usize) -> Position {
        match pending.rank_of(node) {
            Some(r) if (r as usize) < rank => pending.moves[r as usize].1,
            _ => self.positions[node],
        }
    }

    /// Plans the neighbor rows the mover at `rank` will have after its
    /// move, as if all earlier-ranked moves had already been committed.
    /// Pure (`&self`): ranks can be planned concurrently and committed via
    /// [`Self::apply_move`] in rank order for results bit-identical to
    /// sequential [`Self::set_position`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the batch was not sealed with [`Self::seal_moves`].
    pub fn plan_move(&self, pending: &PendingMoves, rank: usize) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(pending.sealed, "plan_move needs a sealed batch");
        let (i, new_pos) = pending.moves[rank];
        let mut rx = Vec::new();
        let mut cs = Vec::new();
        if self.disabled[i] {
            return (rx, cs);
        }
        // Candidate superset under the overlay. Grid mode: the pre-batch
        // 3×3 block around the destination covers every node still at its
        // old position; earlier movers may have *entered* the block, so
        // merge in all movers whose destination cell lands in it (a
        // superset is fine — the distance predicate below filters, and a
        // mover whose overlaid position left the block is geometrically
        // out of carrier-sense range).
        let mut candidates = Vec::new();
        match self.index {
            IndexKind::BruteForce => candidates.extend(0..self.positions.len()),
            IndexKind::Grid => {
                self.grid.candidates(new_pos, &mut candidates);
                let (cx, cy) = self.grid.cell_of(new_pos);
                for dx in -1..=1i64 {
                    let lo =
                        pending.dest_cells.partition_point(|&(cell, _)| cell < (cx + dx, cy - 1));
                    for &(cell, r) in &pending.dest_cells[lo..] {
                        if cell > (cx + dx, cy + 1) {
                            break;
                        }
                        let j = pending.moves[r as usize].0;
                        if let Err(at) = candidates.binary_search(&j) {
                            candidates.insert(at, j);
                        }
                    }
                }
            }
        }
        // Same predicate as `rows_for`, over overlaid positions.
        let a = NodeId::new(i as u16);
        let tx_sq = sq(self.params.tx_range_m);
        let cs_sq = sq(self.params.cs_range_m);
        for &j in &candidates {
            if j == i || self.disabled[j] {
                continue;
            }
            let b = NodeId::new(j as u16);
            if self.blocked.contains(&link_key(a, b)) {
                continue;
            }
            let d_sq = new_pos.distance_sq_to(self.overlay_pos(pending, rank, j));
            if d_sq <= tx_sq {
                rx.push(b);
            }
            if d_sq <= cs_sq {
                cs.push(b);
            }
        }
        (rx, cs)
    }

    /// Commits one planned move: installs the planned rows, mirrors the
    /// delta onto peers, and rebins the grid. Returns the link churn,
    /// exactly as [`Self::set_position`] would have.
    ///
    /// Must be called in rank order with the rows [`Self::plan_move`]
    /// produced for that rank; interleaving other mutations between plan
    /// and apply invalidates the plan.
    pub fn apply_move(
        &mut self,
        node: NodeId,
        to: Position,
        rows: (Vec<NodeId>, Vec<NodeId>),
    ) -> usize {
        let i = node.index();
        self.positions[i] = to;
        self.grid.set(i, to);
        let (new_rx, new_cs) = rows;
        let old_rx = std::mem::take(&mut self.rx_neighbors[i]);
        let old_cs = std::mem::take(&mut self.cs_neighbors[i]);
        let churn = patch_peers(&mut self.rx_neighbors, node, &old_rx, &new_rx)
            + patch_peers(&mut self.cs_neighbors, node, &old_cs, &new_cs);
        self.rx_neighbors[i] = new_rx;
        self.cs_neighbors[i] = new_cs;
        #[cfg(debug_assertions)]
        {
            let everyone: Vec<usize> = (0..self.positions.len()).collect();
            let (want_rx, want_cs) = self.rows_for(i, &everyone);
            debug_assert_eq!(self.rx_neighbors[i], want_rx, "planned rx rows diverged");
            debug_assert_eq!(self.cs_neighbors[i], want_cs, "planned cs rows diverged");
        }
        churn
    }
}

impl sim_core::Snapshotable for Channel {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        // The rx/cs adjacency lists and the grid are derived caches:
        // recomputed on decode from positions + params + fault state.
        w.put(&self.params);
        w.put(&self.positions);
        w.put(&self.disabled);
        w.put(&self.blocked);
        w.put(&self.index);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let params: RadioParams = r.get()?;
        let positions: Vec<Position> = r.get()?;
        let disabled: Vec<bool> = r.get()?;
        let blocked: DetSet<(NodeId, NodeId)> = r.get()?;
        let index: IndexKind = r.get()?;
        if disabled.len() != positions.len() {
            return Err(sim_core::SnapError::Invalid("channel disabled-flag count"));
        }
        if positions.len() >= usize::from(u16::MAX) {
            return Err(sim_core::SnapError::Invalid("channel node count"));
        }
        let grid = SpatialGrid::new(params.cs_range_m, &positions);
        let mut ch = Channel {
            params,
            positions,
            rx_neighbors: Vec::new(),
            cs_neighbors: Vec::new(),
            disabled,
            blocked,
            index,
            grid,
            scratch: Vec::new(),
        };
        ch.recompute();
        Ok(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn chain(count: usize, spacing: f64) -> Channel {
        let positions = (0..count).map(|i| Position::new(i as f64 * spacing, 0.0)).collect();
        Channel::new(positions, RadioParams::default())
    }

    #[test]
    fn chain_adjacency() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.node_count(), 5);
        // Node 2 decodes only 1 and 3.
        assert_eq!(ch.rx_neighbors(n(2)), &[n(1), n(3)]);
        // ...but senses 0, 1, 3, 4 (500 m <= 550 m).
        assert_eq!(ch.cs_neighbors(n(2)), &[n(0), n(1), n(3), n(4)]);
    }

    #[test]
    fn endpoints_have_fewer_neighbors() {
        let ch = chain(5, 250.0);
        assert_eq!(ch.rx_neighbors(n(0)), &[n(1)]);
        assert_eq!(ch.cs_neighbors(n(0)), &[n(1), n(2)]);
    }

    #[test]
    fn symmetry() {
        let ch = chain(6, 250.0);
        for i in 0..6u16 {
            for j in 0..6u16 {
                if i != j {
                    assert_eq!(ch.in_rx_range(n(i), n(j)), ch.in_rx_range(n(j), n(i)));
                    assert_eq!(ch.in_cs_range(n(i), n(j)), ch.in_cs_range(n(j), n(i)));
                }
            }
        }
    }

    #[test]
    fn rx_implies_cs() {
        let ch = chain(8, 200.0);
        for i in 0..8u16 {
            for &j in ch.rx_neighbors(n(i)) {
                assert!(ch.in_cs_range(n(i), j));
            }
        }
    }

    #[test]
    fn mobility_recomputes() {
        let mut ch = chain(3, 250.0);
        assert!(!ch.in_rx_range(n(0), n(2)));
        ch.set_position(n(2), Position::new(200.0, 0.0));
        assert!(ch.in_rx_range(n(0), n(2)));
        assert_eq!(ch.position(n(2)), Position::new(200.0, 0.0));
    }

    #[test]
    fn move_churn_counts_both_radii() {
        let mut ch = chain(3, 250.0);
        // Moving node 2 next to node 0 gains rx 0 (it already sensed 0) —
        // and keeps 1 in both rows: churn = 1.
        assert_eq!(ch.set_position(n(2), Position::new(200.0, 0.0)), 1);
        // Moving it far away drops rx {0, 1} and cs {0, 1}: churn = 4.
        assert_eq!(ch.set_position(n(2), Position::new(10_000.0, 0.0)), 4);
        // A tiny in-place wiggle changes nothing.
        assert_eq!(ch.set_position(n(2), Position::new(10_000.0, 1.0)), 0);
    }

    #[test]
    fn disabling_a_node_removes_it_from_the_air() {
        let mut ch = chain(3, 250.0);
        ch.set_node_enabled(n(1), false);
        assert!(!ch.is_node_enabled(n(1)));
        assert!(!ch.in_rx_range(n(0), n(1)));
        assert!(!ch.in_cs_range(n(1), n(2)));
        assert!(ch.rx_neighbors(n(0)).is_empty());
        assert!(ch.rx_neighbors(n(1)).is_empty());
        ch.set_node_enabled(n(1), true);
        assert!(ch.in_rx_range(n(0), n(1)));
        assert_eq!(ch.rx_neighbors(n(0)), &[n(1)]);
    }

    #[test]
    fn blocking_a_link_is_bidirectional_and_reversible() {
        let mut ch = chain(3, 250.0);
        ch.set_link_blocked(n(2), n(1), true);
        assert!(ch.is_link_blocked(n(1), n(2)));
        assert!(!ch.in_rx_range(n(1), n(2)));
        assert!(!ch.in_rx_range(n(2), n(1)));
        // The other link is untouched.
        assert!(ch.in_rx_range(n(0), n(1)));
        assert_eq!(ch.rx_neighbors(n(1)), &[n(0)]);
        ch.set_link_blocked(n(1), n(2), false);
        assert_eq!(ch.rx_neighbors(n(1)), &[n(0), n(2)]);
    }

    #[test]
    fn faults_survive_mobility_recompute() {
        let mut ch = chain(3, 250.0);
        ch.set_link_blocked(n(0), n(1), true);
        ch.set_position(n(2), Position::new(400.0, 0.0));
        assert!(!ch.in_rx_range(n(0), n(1)), "block must survive recompute");
    }

    #[test]
    fn node_never_its_own_neighbor() {
        let ch = chain(4, 100.0);
        for i in 0..4u16 {
            assert!(!ch.rx_neighbors(n(i)).contains(&n(i)));
            assert!(!ch.in_rx_range(n(i), n(i)));
        }
    }

    #[test]
    fn snapshot_preserves_index_kind() {
        use sim_core::{SnapshotReader, SnapshotWriter, Snapshotable};
        for kind in [IndexKind::Grid, IndexKind::BruteForce] {
            let positions = (0..6).map(|i| Position::new(i as f64 * 250.0, 0.0)).collect();
            let mut ch = Channel::with_index(positions, RadioParams::default(), kind);
            ch.set_link_blocked(n(0), n(1), true);
            ch.set_node_enabled(n(3), false);
            let mut w = SnapshotWriter::new();
            ch.encode(&mut w);
            let bytes = w.finish();
            let mut r = SnapshotReader::new(&bytes);
            let back = Channel::decode(&mut r).expect("decode");
            assert_eq!(back.index(), kind);
            for i in 0..6u16 {
                assert_eq!(back.rx_neighbors(n(i)), ch.rx_neighbors(n(i)));
                assert_eq!(back.cs_neighbors(n(i)), ch.cs_neighbors(n(i)));
            }
            assert!(back.is_link_blocked(n(0), n(1)));
            assert!(!back.is_node_enabled(n(3)));
        }
    }
}

#[cfg(test)]
mod plan_apply_differential {
    use super::*;
    use proptest::prelude::*;

    /// Batched plan/apply must be observationally identical to sequential
    /// `set_position` calls in the same order: same per-move churn, same
    /// final rows, in both index modes — the property the sharded driver's
    /// parallel mobility planning rests on.
    fn check_batch(
        kind: IndexKind,
        starts: &[(f64, f64)],
        moves: &[(usize, f64, f64)],
        disable: &[usize],
        block: &[(usize, usize)],
    ) {
        let n = starts.len();
        let positions: Vec<Position> = starts.iter().map(|&(x, y)| Position::new(x, y)).collect();
        let mut batched = Channel::with_index(positions.clone(), RadioParams::default(), kind);
        let mut serial = Channel::with_index(positions, RadioParams::default(), kind);
        for &d in disable {
            batched.set_node_enabled(NodeId::new((d % n) as u16), false);
            serial.set_node_enabled(NodeId::new((d % n) as u16), false);
        }
        for &(a, b) in block {
            let (a, b) = ((a % n) as u16, (b % n) as u16);
            if a != b {
                batched.set_link_blocked(NodeId::new(a), NodeId::new(b), true);
                serial.set_link_blocked(NodeId::new(a), NodeId::new(b), true);
            }
        }
        // Dedup movers (a node moves at most once per batch), keep order.
        let mut seen = vec![false; n];
        let mut pending = PendingMoves::new();
        let mut plan_list = Vec::new();
        for &(node, x, y) in moves {
            let node = node % n;
            if std::mem::replace(&mut seen[node], true) {
                continue;
            }
            pending.stage(NodeId::new(node as u16), Position::new(x, y));
            plan_list.push((node, Position::new(x, y)));
        }
        batched.seal_moves(&mut pending);
        // Plan all ranks up front against the pre-batch state...
        let plans: Vec<_> = (0..pending.len()).map(|r| batched.plan_move(&pending, r)).collect();
        // ...then commit in rank order, racing the serial reference.
        for (rank, rows) in plans.into_iter().enumerate() {
            let (node, to) = plan_list[rank];
            let node = NodeId::new(node as u16);
            let batched_churn = batched.apply_move(node, to, rows);
            let serial_churn = serial.set_position(node, to);
            assert_eq!(batched_churn, serial_churn, "churn diverged at rank {rank}");
        }
        for i in 0..n as u16 {
            let node = NodeId::new(i);
            assert_eq!(batched.rx_neighbors(node), serial.rx_neighbors(node), "rx rows at {node}");
            assert_eq!(batched.cs_neighbors(node), serial.cs_neighbors(node), "cs rows at {node}");
            assert_eq!(batched.position(node), serial.position(node));
        }
    }

    proptest! {
        #[test]
        fn batched_moves_match_sequential(
            starts in proptest::collection::vec((0.0f64..2200.0, 0.0f64..2200.0), 2..20),
            moves in proptest::collection::vec(
                (0usize..20, 0.0f64..2200.0, 0.0f64..2200.0),
                1..20,
            ),
            disable in proptest::collection::vec(0usize..20, 0..3),
            block in proptest::collection::vec((0usize..20, 0usize..20), 0..3),
        ) {
            for kind in [IndexKind::Grid, IndexKind::BruteForce] {
                check_batch(kind, &starts, &moves, &disable, &block);
            }
        }
    }

    #[test]
    fn dense_swarm_batch_matches() {
        // Everyone piled into two cells, all moving at once — maximal
        // overlay interaction (entering/leaving the 3×3 block).
        let starts: Vec<(f64, f64)> =
            (0..12).map(|i| ((i % 2) as f64 * 540.0, (i / 2) as f64 * 5.0)).collect();
        let moves: Vec<(usize, f64, f64)> =
            (0..12).map(|i| (i, (11 - i) as f64 * 300.0, (i % 3) as f64 * 700.0)).collect();
        for kind in [IndexKind::Grid, IndexKind::BruteForce] {
            check_batch(kind, &starts, &moves, &[3], &[(0, 5)]);
        }
    }

    #[test]
    #[should_panic(expected = "staged twice")]
    fn double_stage_is_rejected_at_seal() {
        let ch = Channel::new(
            vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)],
            RadioParams::default(),
        );
        let mut pending = PendingMoves::new();
        pending.stage(NodeId::new(0), Position::new(1.0, 0.0));
        pending.stage(NodeId::new(0), Position::new(2.0, 0.0));
        ch.seal_moves(&mut pending);
    }
}

#[cfg(test)]
mod grid_differential {
    use super::*;
    use proptest::prelude::*;

    /// One randomly generated mutation against the channel.
    fn apply(ch: &mut Channel, node_count: usize, op: (u8, usize, usize, f64, f64)) -> usize {
        let (kind, a, b, x, y) = op;
        let a = NodeId::new((a % node_count) as u16);
        let b = NodeId::new((b % node_count) as u16);
        match kind % 5 {
            0 | 1 => ch.set_position(a, Position::new(x, y)),
            2 => ch.set_node_enabled(a, false),
            3 => ch.set_node_enabled(a, true),
            _ => {
                if a == b {
                    0
                } else {
                    let was = ch.is_link_blocked(a, b);
                    ch.set_link_blocked(a, b, !was)
                }
            }
        }
    }

    proptest! {
        /// The grid index is a pure accelerator: after any sequence of
        /// moves, node disables/enables and link blocks/unblocks, its
        /// neighbor rows — and the churn reported for every mutation —
        /// equal the brute-force recompute's, entry for entry.
        #[test]
        fn grid_matches_brute_force(
            starts in proptest::collection::vec((0.0f64..2200.0, 0.0f64..2200.0), 2..24),
            ops in proptest::collection::vec(
                (0u8..5, 0usize..24, 0usize..24, 0.0f64..2200.0, 0.0f64..2200.0),
                1..40,
            )
        ) {
            let positions: Vec<Position> =
                starts.iter().map(|&(x, y)| Position::new(x, y)).collect();
            let node_count = positions.len();
            let mut fast =
                Channel::with_index(positions.clone(), RadioParams::default(), IndexKind::Grid);
            let mut slow =
                Channel::with_index(positions, RadioParams::default(), IndexKind::BruteForce);
            for &op in &ops {
                let fast_churn = apply(&mut fast, node_count, op);
                let slow_churn = apply(&mut slow, node_count, op);
                prop_assert_eq!(fast_churn, slow_churn, "churn diverged on {:?}", op);
                for i in 0..node_count as u16 {
                    let node = NodeId::new(i);
                    prop_assert_eq!(
                        fast.rx_neighbors(node),
                        slow.rx_neighbors(node),
                        "rx rows diverged at {} after {:?}",
                        node,
                        op
                    );
                    prop_assert_eq!(
                        fast.cs_neighbors(node),
                        slow.cs_neighbors(node),
                        "cs rows diverged at {} after {:?}",
                        node,
                        op
                    );
                }
            }
        }
    }
}
