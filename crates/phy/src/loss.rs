//! Bursty channel error models.
//!
//! The paper's "random loss" is a flat i.i.d. per-frame probability
//! ([`crate::RadioParams::per_frame_loss`]). Real wireless channels fade in
//! bursts: errors cluster while the channel is in a bad state and are rare
//! while it is good. The classic two-state Markov abstraction of this is the
//! Gilbert–Elliott model, provided here as a drop-in *episode* that the
//! simulator can switch on and off under scenario control.
//!
//! The model is a pure state machine: the caller owns the per-receiver
//! [`GeState`] and the [`sim_core::SimRng`] so that every draw stays on the
//! simulation's seeded stream.
//!
//! # Example
//!
//! ```
//! use phy::{GeState, GilbertElliott};
//! use sim_core::SimRng;
//!
//! let ge = GilbertElliott::new(0.05, 0.5, 0.0, 1.0).unwrap();
//! let mut state = GeState::new();
//! let mut rng = SimRng::new(7);
//! let lost = (0..10_000).filter(|_| state.frame_lost(&ge, &mut rng)).count();
//! // Stationary loss ≈ π_bad · 1.0 = 0.05 / 0.55 ≈ 9.1%.
//! assert!(lost > 500 && lost < 1_500);
//! ```

use sim_core::SimRng;

/// Parameters of a two-state Gilbert–Elliott bursty loss channel.
///
/// The channel alternates between a *good* and a *bad* state; state
/// transitions are sampled once per frame, then the frame is lost with the
/// current state's loss probability. Burstiness comes from the sojourn
/// times: the mean dwell in the bad state is `1 / p_bg` frames.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Per-frame transition probability good → bad.
    pub p_gb: f64,
    /// Per-frame transition probability bad → good.
    pub p_bg: f64,
    /// Frame loss probability while in the good state.
    pub loss_good: f64,
    /// Frame loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds a validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first parameter outside `[0, 1]`, or of
    /// a chain that can never leave one of its states it can enter.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Result<Self, String> {
        let ge = GilbertElliott { p_gb, p_bg, loss_good, loss_bad };
        ge.check()?;
        Ok(ge)
    }

    fn check(&self) -> Result<(), String> {
        for (name, v) in [
            ("p_gb", self.p_gb),
            ("p_bg", self.p_bg),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("gilbert-elliott {name} must be in [0, 1], got {v}"));
            }
        }
        if self.p_gb > 0.0 && self.p_bg == 0.0 {
            return Err("gilbert-elliott chain would be absorbed in the bad state \
                        (p_gb > 0 but p_bg == 0)"
                .to_string());
        }
        Ok(())
    }

    /// Whether the model is degenerate: both states lose frames with the
    /// same probability, so it is indistinguishable from (and evaluated
    /// exactly as) the flat Bernoulli model.
    pub fn is_degenerate(&self) -> bool {
        self.loss_good.to_bits() == self.loss_bad.to_bits()
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            return 0.0;
        }
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run frame loss probability.
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    /// Mean sojourn in the bad state, in frames.
    pub fn mean_bad_sojourn(&self) -> f64 {
        if self.p_bg == 0.0 {
            return f64::INFINITY;
        }
        1.0 / self.p_bg
    }
}

/// Per-receiver Gilbert–Elliott channel state (starts in the good state).
///
/// Each receiver carries its own state so bursts are independent across
/// links, mirroring how the flat model draws loss per receiver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeState {
    bad: bool,
}

impl GeState {
    /// A fresh state in the good channel condition.
    pub fn new() -> Self {
        GeState { bad: false }
    }

    /// Whether the channel is currently in the bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Samples one frame: steps the state chain, then draws the loss from
    /// the (possibly new) state's loss probability.
    ///
    /// Degenerate parameter sets take the exact Bernoulli path — same
    /// decision *and* same number of RNG draws as the flat model — so a
    /// scripted degenerate episode reproduces the legacy behaviour
    /// bit-for-bit.
    pub fn frame_lost(&mut self, ge: &GilbertElliott, rng: &mut SimRng) -> bool {
        if ge.is_degenerate() {
            return ge.loss_good > 0.0 && rng.chance(ge.loss_good);
        }
        let flip = if self.bad { ge.p_bg } else { ge.p_gb };
        if rng.chance(flip) {
            self.bad = !self.bad;
        }
        let p = if self.bad { ge.loss_bad } else { ge.loss_good };
        p > 0.0 && rng.chance(p)
    }
}

impl sim_core::Snapshotable for GilbertElliott {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.p_gb);
        w.put_f64(self.p_bg);
        w.put_f64(self.loss_good);
        w.put_f64(self.loss_bad);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let ge = GilbertElliott {
            p_gb: r.take_f64()?,
            p_bg: r.take_f64()?,
            loss_good: r.take_f64()?,
            loss_bad: r.take_f64()?,
        };
        ge.check().map_err(|_| sim_core::SnapError::Invalid("gilbert-elliott params"))?;
        Ok(ge)
    }
}

impl sim_core::Snapshotable for GeState {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_bool(self.bad);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(GeState { bad: r.take_bool()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_params() {
        assert!(GilbertElliott::new(1.5, 0.5, 0.0, 1.0).is_err());
        assert!(GilbertElliott::new(0.1, -0.1, 0.0, 1.0).is_err());
        assert!(GilbertElliott::new(0.1, 0.5, 0.0, 2.0).is_err());
    }

    #[test]
    fn rejects_absorbing_bad_state() {
        assert!(GilbertElliott::new(0.1, 0.0, 0.0, 1.0).is_err());
        // All-good chain with no transitions is fine.
        assert!(GilbertElliott::new(0.0, 0.0, 0.01, 0.01).is_ok());
    }

    #[test]
    fn empirical_loss_rate_matches_stationary_prediction() {
        // π_bad = 0.02 / 0.22 ≈ 0.0909; mean loss ≈ 0.0909 · 0.8 ≈ 7.3%.
        let ge = GilbertElliott::new(0.02, 0.2, 0.0, 0.8).expect("valid params");
        let predicted = ge.mean_loss();
        let mut state = GeState::new();
        let mut rng = SimRng::new(0x6765);
        let n = 200_000;
        let lost = (0..n).filter(|_| state.frame_lost(&ge, &mut rng)).count();
        let empirical = lost as f64 / n as f64;
        assert!(
            (empirical - predicted).abs() < 0.01,
            "empirical {empirical:.4} vs predicted {predicted:.4}"
        );
    }

    #[test]
    fn empirical_burst_length_matches_sojourn_prediction() {
        // With loss_good = 0 and loss_bad = 1, a run of consecutive losses
        // is exactly one bad-state sojourn: Geometric(p_bg), mean 1/p_bg.
        let ge = GilbertElliott::new(0.05, 0.25, 0.0, 1.0).expect("valid params");
        let mut state = GeState::new();
        let mut rng = SimRng::new(0x6267);
        let mut bursts = Vec::new();
        let mut run = 0u64;
        for _ in 0..400_000 {
            if state.frame_lost(&ge, &mut rng) {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        assert!(bursts.len() > 1_000, "too few bursts observed: {}", bursts.len());
        let mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        let predicted = ge.mean_bad_sojourn();
        assert!(
            (mean - predicted).abs() / predicted < 0.1,
            "mean burst {mean:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn degenerate_params_reproduce_bernoulli_exactly() {
        // Same seed, same draw count: the degenerate GE episode must make
        // the identical per-frame decisions as the flat Bernoulli model.
        let p = 0.03;
        let ge = GilbertElliott::new(0.1, 0.4, p, p).expect("valid params");
        assert!(ge.is_degenerate());
        let mut state = GeState::new();
        let mut ge_rng = SimRng::new(42);
        let mut flat_rng = SimRng::new(42);
        for i in 0..50_000 {
            let a = state.frame_lost(&ge, &mut ge_rng);
            let b = flat_rng.chance(p);
            assert_eq!(a, b, "diverged at frame {i}");
        }
        // And the streams stayed in lockstep.
        assert_eq!(ge_rng.next_u64(), flat_rng.next_u64());
    }

    #[test]
    fn zero_loss_degenerate_draws_nothing() {
        // loss 0/0 must not consume RNG draws, mirroring the simulator's
        // `loss_p > 0.0` guard on the flat model.
        let ge = GilbertElliott::new(0.2, 0.3, 0.0, 0.0).expect("valid params");
        let mut state = GeState::new();
        let mut rng = SimRng::new(9);
        let mut twin = SimRng::new(9);
        for _ in 0..100 {
            assert!(!state.frame_lost(&ge, &mut rng));
        }
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    #[test]
    fn bursty_channel_is_burstier_than_bernoulli_at_equal_rate() {
        // Compare the number of loss runs at matched long-run loss rates: the
        // GE channel packs its losses into fewer, longer bursts.
        let ge = GilbertElliott::new(0.01, 0.09, 0.0, 1.0).expect("valid params");
        let rate = ge.mean_loss();
        let count_runs =
            |seq: &[bool]| seq.windows(2).filter(|w| !w[0] && w[1]).count() + usize::from(seq[0]);
        let mut state = GeState::new();
        let mut rng = SimRng::new(11);
        let ge_seq: Vec<bool> = (0..100_000).map(|_| state.frame_lost(&ge, &mut rng)).collect();
        let mut rng = SimRng::new(11);
        let flat_seq: Vec<bool> = (0..100_000).map(|_| rng.chance(rate)).collect();
        let (ge_losses, flat_losses) =
            (ge_seq.iter().filter(|&&l| l).count(), flat_seq.iter().filter(|&&l| l).count());
        // Matched rates within noise...
        assert!((ge_losses as f64 - flat_losses as f64).abs() < 0.25 * flat_losses as f64);
        // ...but far fewer distinct bursts.
        assert!(
            2 * count_runs(&ge_seq) < count_runs(&flat_seq),
            "ge runs {} vs flat runs {}",
            count_runs(&ge_seq),
            count_runs(&flat_seq)
        );
    }

    #[test]
    fn stationary_math() {
        let ge = GilbertElliott::new(0.1, 0.3, 0.0, 1.0).expect("valid params");
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.mean_loss() - 0.25).abs() < 1e-12);
        assert!((ge.mean_bad_sojourn() - 1.0 / 0.3).abs() < 1e-12);
        let frozen = GilbertElliott::new(0.0, 0.0, 0.0, 1.0).expect("valid params");
        assert_eq!(frozen.stationary_bad(), 0.0);
    }
}
