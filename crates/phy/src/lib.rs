//! Wireless physical layer: radio parameters, geometry, the shared channel,
//! and the per-node PHY reception state machine.
//!
//! The model mirrors what the paper's NS2 setup provides:
//!
//! * a half-duplex radio at 2 Mbps with a 250 m transmission range and a
//!   larger (550 m) carrier-sense/interference range,
//! * boolean "disc" propagation — exact 250 m node spacing in the paper's
//!   topologies makes reception binary in NS2's two-ray-ground model too,
//! * per-receiver collision detection with no capture: any overlap of two
//!   signals at a receiver corrupts both,
//! * an optional i.i.d. per-frame random loss probability standing in for
//!   channel bit errors (the paper's "random loss").
//!
//! The crate is a pure state machine: the `netstack` crate owns the event
//! loop and calls into [`PhyState`] when scheduled receptions start and end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod loss;
mod params;
mod state;

pub use channel::{Channel, PendingMoves};
pub use loss::{GeState, GilbertElliott};
pub use params::RadioParams;
pub use state::{PhyState, RxOutcome, TxId};
// Geometry and the position index live in the `topo` subsystem; re-exported
// here so PHY users keep a single import path.
pub use topo::{IndexKind, Position};
