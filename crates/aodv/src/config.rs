//! AODV configuration.

use sim_core::SimDuration;

/// Tunable AODV parameters.
///
/// Defaults follow RFC 3561 suggested values scaled to the paper's network
/// sizes (up to 33 nodes): routes stay active for 10 s once used, RREQs are
/// retried twice with binary exponential timeout, and discovery floods use a
/// TTL that covers the whole network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AodvConfig {
    /// How long a route stays valid after last use.
    pub active_route_timeout: SimDuration,
    /// Wait for an RREP after one RREQ flood (doubles per retry). ns-2's
    /// expanding-ring search makes early retries fast; we mirror that with
    /// a short base wait and binary exponential growth.
    pub net_traversal_time: SimDuration,
    /// RREQ retries before the destination is declared unreachable.
    pub rreq_retries: u32,
    /// Maximum TTL for RREQ floods (the network-wide flood).
    pub rreq_ttl: u8,
    /// Expanding-ring search (RFC 3561 §6.4): the first discovery attempt
    /// uses `ring_ttl_start`, growing by `ring_ttl_increment` per retry up
    /// to `ring_ttl_threshold`, after which full-TTL floods are used.
    /// Set `ring_ttl_start >= rreq_ttl` to disable the ring search.
    ///
    /// **Disabled by default**: the paper's networks are small and every
    /// ring miss delays recovery after the frequent contention-induced
    /// route breaks (measured: −5–8 % chain goodput with rings 3/2/7), so
    /// the calibrated defaults flood at full TTL like our baseline ns-2
    /// comparison. Enable with e.g. `ring_ttl_start: 3`.
    pub ring_ttl_start: u8,
    /// TTL added per expanding-ring retry.
    pub ring_ttl_increment: u8,
    /// TTL above which the search switches to network-wide floods.
    pub ring_ttl_threshold: u8,
    /// Maximum data packets buffered per destination during discovery.
    pub buffer_capacity: usize,
    /// How long a seen `(origin, broadcast-id)` pair suppresses duplicate
    /// RREQ rebroadcasts.
    pub rreq_seen_lifetime: SimDuration,
    /// HELLO beacon interval; `None` (the default, matching ns-2 with
    /// link-layer feedback enabled) disables beacons — link failures are
    /// then detected only by the MAC retry limit.
    pub hello_interval: Option<SimDuration>,
    /// Missed HELLO intervals before a neighbour is declared lost.
    pub allowed_hello_loss: u32,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: SimDuration::from_secs(10),
            net_traversal_time: SimDuration::from_millis(300),
            rreq_retries: 3,
            rreq_ttl: 64,
            ring_ttl_start: 64,
            ring_ttl_increment: 2,
            ring_ttl_threshold: 7,
            buffer_capacity: 64,
            rreq_seen_lifetime: SimDuration::from_secs(10),
            hello_interval: None,
            allowed_hello_loss: 2,
        }
    }
}

impl AodvConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero retries, TTL, or buffer capacity.
    pub fn validate(&self) {
        assert!(self.rreq_ttl > 0, "RREQ TTL must be positive");
        assert!(self.ring_ttl_start > 0, "ring TTL start must be positive");
        assert!(self.ring_ttl_increment > 0, "ring TTL increment must be positive");
        assert!(self.buffer_capacity > 0, "buffer capacity must be positive");
        assert!(self.net_traversal_time > SimDuration::ZERO, "net traversal time must be positive");
        if let Some(interval) = self.hello_interval {
            assert!(interval > SimDuration::ZERO, "hello interval must be positive");
            assert!(self.allowed_hello_loss > 0, "allowed hello loss must be positive");
        }
    }
}

impl sim_core::Snapshotable for AodvConfig {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.active_route_timeout);
        w.put(&self.net_traversal_time);
        w.put_u32(self.rreq_retries);
        w.put_u8(self.rreq_ttl);
        w.put_u8(self.ring_ttl_start);
        w.put_u8(self.ring_ttl_increment);
        w.put_u8(self.ring_ttl_threshold);
        w.put_usize(self.buffer_capacity);
        w.put(&self.rreq_seen_lifetime);
        w.put(&self.hello_interval);
        w.put_u32(self.allowed_hello_loss);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let cfg = AodvConfig {
            active_route_timeout: r.get()?,
            net_traversal_time: r.get()?,
            rreq_retries: r.take_u32()?,
            rreq_ttl: r.take_u8()?,
            ring_ttl_start: r.take_u8()?,
            ring_ttl_increment: r.take_u8()?,
            ring_ttl_threshold: r.take_u8()?,
            buffer_capacity: r.take_usize()?,
            rreq_seen_lifetime: r.get()?,
            hello_interval: r.get()?,
            allowed_hello_loss: r.take_u32()?,
        };
        // Mirror `validate()` as total checks: a snapshot must never panic.
        if cfg.rreq_ttl == 0
            || cfg.ring_ttl_start == 0
            || cfg.ring_ttl_increment == 0
            || cfg.buffer_capacity == 0
            || cfg.net_traversal_time == SimDuration::ZERO
            || cfg.hello_interval.is_some_and(|i| i == SimDuration::ZERO)
            || (cfg.hello_interval.is_some() && cfg.allowed_hello_loss == 0)
        {
            return Err(sim_core::SnapError::Invalid("aodv config"));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        AodvConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_rejected() {
        AodvConfig { rreq_ttl: 0, ..AodvConfig::default() }.validate();
    }
}
