//! AODV (Ad hoc On-demand Distance Vector) routing, the protocol the paper's
//! NS2 evaluation uses (Table 5.1).
//!
//! Implemented subset (matching ns-2's default configuration for static
//! multihop scenarios):
//!
//! * on-demand **route discovery**: RREQ flooding with `(origin,
//!   broadcast-id)` duplicate suppression, reverse-route learning, RREP
//!   unicast back along the reverse path, and intermediate-node replies from
//!   fresh-enough cached routes,
//! * **destination sequence numbers** to keep routes loop-free,
//! * **route maintenance**: MAC-layer link-failure feedback invalidates
//!   routes through the dead hop and emits RERR messages that propagate to
//!   active precursors; sources re-discover on demand,
//! * **packet buffering** during discovery with a bounded buffer and
//!   retry-limited, binary-exponential RREQ timeouts,
//! * optional **HELLO beacons** (`AodvConfig::hello_interval`) with
//!   silent-neighbour teardown — off by default, matching ns-2 with
//!   link-layer failure detection, where the 802.11 retry limit reports
//!   broken links,
//! * optional **expanding-ring search** (`AodvConfig::ring_ttl_start`) —
//!   also off by default; on the paper's small, frequently-rediscovering
//!   networks ring misses cost 5–8 % goodput (measured), so the calibrated
//!   defaults flood at full TTL.
//!
//! Omitted: periodic route-table purges — expiry is checked lazily.
//!
//! Like the MAC, the router is a pure state machine driven by the `netstack`
//! crate, producing [`AodvOutput`] actions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod table;

pub use config::AodvConfig;
pub use engine::{Aodv, AodvOutput, AodvOutputs, AodvStats, AodvTimer, DropReason};
pub use table::{Route, RouteTable};
