//! The AODV routing table.

use sim_core::{DetMap, DetSet};

use sim_core::{SimDuration, SimTime};
use wire::NodeId;

/// One routing table entry.
#[derive(Clone, Debug)]
pub struct Route {
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Last known destination sequence number.
    pub dst_seq: u32,
    /// Whether the route is currently usable.
    pub valid: bool,
    /// Instant after which the route is considered stale.
    pub expires: SimTime,
    /// Neighbours that route through us to this destination (told on break).
    pub precursors: DetSet<NodeId>,
}

/// The per-node routing table.
///
/// # Example
///
/// ```
/// use aodv::RouteTable;
/// use sim_core::{SimDuration, SimTime};
/// use wire::NodeId;
///
/// let mut t = RouteTable::new();
/// let now = SimTime::ZERO;
/// t.update(NodeId::new(5), NodeId::new(1), 2, 7, now + SimDuration::from_secs(10));
/// assert_eq!(t.lookup(NodeId::new(5), now).unwrap().next_hop, NodeId::new(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: DetMap<NodeId, Route>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A valid, unexpired route to `dst`, if any.
    pub fn lookup(&self, dst: NodeId, now: SimTime) -> Option<&Route> {
        self.routes.get(&dst).filter(|r| r.valid && r.expires > now)
    }

    /// The entry for `dst` regardless of validity (e.g. to compare sequence
    /// numbers).
    pub fn entry(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(&dst)
    }

    /// Installs or refreshes a route if it is newer (higher `dst_seq`) or
    /// equally new but shorter. Returns whether the table changed.
    pub fn update(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        dst_seq: u32,
        expires: SimTime,
    ) -> bool {
        match self.routes.get_mut(&dst) {
            Some(r) => {
                let newer = dst_seq > r.dst_seq
                    || (dst_seq == r.dst_seq && hop_count < r.hop_count)
                    || !r.valid;
                if newer {
                    r.next_hop = next_hop;
                    r.hop_count = hop_count;
                    r.dst_seq = r.dst_seq.max(dst_seq);
                    r.valid = true;
                    r.expires = r.expires.max(expires);
                    true
                } else {
                    // Same route: refresh lifetime.
                    if r.next_hop == next_hop && r.hop_count == hop_count {
                        r.expires = r.expires.max(expires);
                    }
                    false
                }
            }
            None => {
                self.routes.insert(
                    dst,
                    Route {
                        next_hop,
                        hop_count,
                        dst_seq,
                        valid: true,
                        expires,
                        precursors: DetSet::new(),
                    },
                );
                true
            }
        }
    }

    /// Installs or refreshes the one-hop route to a neighbour we just heard
    /// from, preserving any known sequence number.
    pub fn update_neighbor(&mut self, neighbor: NodeId, expires: SimTime) {
        match self.routes.get_mut(&neighbor) {
            Some(r) => {
                r.next_hop = neighbor;
                r.hop_count = 1;
                r.valid = true;
                r.expires = r.expires.max(expires);
            }
            None => {
                self.routes.insert(
                    neighbor,
                    Route {
                        next_hop: neighbor,
                        hop_count: 1,
                        dst_seq: 0,
                        valid: true,
                        expires,
                        precursors: DetSet::new(),
                    },
                );
            }
        }
    }

    /// Extends the lifetime of the route to `dst` (called on every use).
    pub fn refresh(&mut self, dst: NodeId, now: SimTime, lifetime: SimDuration) {
        if let Some(r) = self.routes.get_mut(&dst) {
            r.expires = r.expires.max(now + lifetime);
        }
    }

    /// Records that `precursor` routes through us toward `dst`.
    pub fn add_precursor(&mut self, dst: NodeId, precursor: NodeId) {
        if let Some(r) = self.routes.get_mut(&dst) {
            r.precursors.insert(precursor);
        }
    }

    /// Invalidates every valid route whose next hop is `hop`; returns the
    /// affected `(dst, incremented_seq, precursors)` list for RERR
    /// generation.
    pub fn invalidate_via(&mut self, hop: NodeId) -> Vec<(NodeId, u32, Vec<NodeId>)> {
        let mut broken = Vec::new();
        for (&dst, r) in &mut self.routes {
            if r.valid && r.next_hop == hop {
                r.valid = false;
                r.dst_seq += 1; // per RFC 3561 §6.11
                broken.push((dst, r.dst_seq, r.precursors.iter().copied().collect()));
            }
        }
        broken
    }

    /// Invalidates the route to `dst` if it goes through `via` and the
    /// reported sequence number is at least as new. Returns whether a valid
    /// route was torn down.
    pub fn invalidate_route(&mut self, dst: NodeId, via: NodeId, dst_seq: u32) -> bool {
        if let Some(r) = self.routes.get_mut(&dst) {
            if r.valid && r.next_hop == via && dst_seq >= r.dst_seq {
                r.valid = false;
                r.dst_seq = dst_seq;
                return true;
            }
        }
        false
    }

    /// Number of entries (valid or not).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

impl sim_core::Snapshotable for Route {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.next_hop);
        w.put_u8(self.hop_count);
        w.put_u32(self.dst_seq);
        w.put_bool(self.valid);
        w.put(&self.expires);
        w.put(&self.precursors);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Route {
            next_hop: r.get()?,
            hop_count: r.take_u8()?,
            dst_seq: r.take_u32()?,
            valid: r.take_bool()?,
            expires: r.get()?,
            precursors: r.get()?,
        })
    }
}

impl sim_core::Snapshotable for RouteTable {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.routes);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(RouteTable { routes: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn exp(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn install_and_lookup() {
        let mut t = RouteTable::new();
        assert!(t.update(n(5), n(1), 3, 10, exp(10)));
        let r = t.lookup(n(5), SimTime::ZERO).unwrap();
        assert_eq!(r.next_hop, n(1));
        assert_eq!(r.hop_count, 3);
    }

    #[test]
    fn expired_route_not_returned() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        assert!(t.lookup(n(5), exp(11)).is_none());
        assert!(t.entry(n(5)).is_some());
    }

    #[test]
    fn newer_seq_wins() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        assert!(t.update(n(5), n(2), 5, 11, exp(10)));
        assert_eq!(t.lookup(n(5), SimTime::ZERO).unwrap().next_hop, n(2));
    }

    #[test]
    fn same_seq_shorter_wins() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        assert!(t.update(n(5), n(2), 2, 10, exp(10)));
        assert_eq!(t.lookup(n(5), SimTime::ZERO).unwrap().hop_count, 2);
        // Longer path with same seq is rejected.
        assert!(!t.update(n(5), n(3), 4, 10, exp(10)));
    }

    #[test]
    fn stale_seq_rejected() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        assert!(!t.update(n(5), n(2), 1, 9, exp(10)));
        assert_eq!(t.lookup(n(5), SimTime::ZERO).unwrap().next_hop, n(1));
    }

    #[test]
    fn invalidate_via_reports_precursors() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        t.update(n(6), n(1), 4, 2, exp(10));
        t.update(n(7), n(2), 1, 5, exp(10));
        t.add_precursor(n(5), n(9));
        let mut broken = t.invalidate_via(n(1));
        broken.sort_by_key(|b| b.0);
        assert_eq!(broken.len(), 2);
        assert_eq!(broken[0].0, n(5));
        assert_eq!(broken[0].1, 11); // seq incremented
        assert_eq!(broken[0].2, vec![n(9)]);
        assert!(t.lookup(n(5), SimTime::ZERO).is_none());
        assert!(t.lookup(n(7), SimTime::ZERO).is_some());
    }

    #[test]
    fn reinstall_after_invalidation() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        t.invalidate_via(n(1));
        // Even an equal-seq update revalidates a broken route.
        assert!(t.update(n(5), n(2), 4, 11, exp(20)));
        assert!(t.lookup(n(5), SimTime::ZERO).is_some());
    }

    #[test]
    fn invalidate_route_respects_seq_and_hop() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        assert!(!t.invalidate_route(n(5), n(2), 12)); // different next hop
        assert!(!t.invalidate_route(n(5), n(1), 9)); // stale seq
        assert!(t.invalidate_route(n(5), n(1), 11));
        assert!(t.lookup(n(5), SimTime::ZERO).is_none());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut t = RouteTable::new();
        t.update(n(5), n(1), 3, 10, exp(10));
        t.refresh(n(5), exp(9), SimDuration::from_secs(10));
        assert!(t.lookup(n(5), exp(15)).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn nid(i: u16) -> NodeId {
        NodeId::new(i % 8)
    }

    proptest! {
        /// After any sequence of updates, the stored sequence number for a
        /// destination never decreases, and a valid route's data is always
        /// one that was actually offered.
        #[test]
        fn seq_numbers_never_regress(
            ops in proptest::collection::vec((0u16..8, 0u16..8, 1u8..10, 0u32..20), 1..64)
        ) {
            let mut table = RouteTable::new();
            let mut best_seq = std::collections::BTreeMap::new();
            let expires = SimTime::from_nanos(1_000_000_000);
            for (dst, hop, hops, seq) in ops {
                let dst = nid(dst);
                table.update(dst, nid(hop), hops, seq, expires);
                let prev = best_seq.entry(dst).or_insert(0u32);
                *prev = (*prev).max(seq);
                let entry = table.entry(dst).unwrap();
                prop_assert!(entry.dst_seq >= *prev,
                    "stored seq {} regressed below {}", entry.dst_seq, *prev);
            }
        }

        /// Invalidation via a hop only ever *removes* usable routes; it
        /// never manufactures one, and surviving routes avoid the dead hop.
        #[test]
        fn invalidate_via_is_sound(
            ops in proptest::collection::vec((0u16..8, 0u16..8, 1u8..10, 0u32..20), 1..32),
            dead in 0u16..8
        ) {
            let mut table = RouteTable::new();
            let expires = SimTime::from_nanos(1_000_000_000);
            for (dst, hop, hops, seq) in ops {
                table.update(nid(dst), nid(hop), hops, seq, expires);
            }
            let dead = nid(dead);
            table.invalidate_via(dead);
            for i in 0..8u16 {
                if let Some(r) = table.lookup(nid(i), SimTime::ZERO) {
                    prop_assert!(r.next_hop != dead, "route survived via dead hop");
                }
            }
        }
    }
}
