//! The per-node AODV routing engine.

use std::collections::VecDeque;

use sim_core::DetMap;

use sim_core::{SimTime, SmallVec, TimerHandle, TimerSlab};
use wire::{AodvMessage, NodeId, Packet, Payload, RouteError, RouteReply, RouteRequest, UidGen};

use crate::{AodvConfig, RouteTable};

/// Identifies a discovery-timeout (or HELLO) timer set by the engine. The
/// driver can skip stale pops entirely by checking [`Aodv::timer_is_live`]
/// (a generation-checked tombstone from `sim_core`'s [`TimerSlab`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AodvTimer(TimerHandle);

/// Output batch returned by the engine's event handlers. Usually 0–3
/// entries, so the inline representation avoids a heap allocation per call.
pub type AodvOutputs = SmallVec<AodvOutput, 4>;

/// Why a packet was dropped by the routing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No route and this node is not the source (cannot buffer).
    NoRoute,
    /// The IP TTL reached zero.
    TtlExpired,
    /// The discovery buffer overflowed (oldest packet evicted).
    BufferOverflow,
    /// Route discovery exhausted its retries.
    DiscoveryFailed,
}

/// Actions the driver must execute on the engine's behalf.
#[derive(Clone, Debug)]
pub enum AodvOutput {
    /// Queue `packet` for MAC transmission to `next_hop`
    /// ([`NodeId::BROADCAST`] for floods).
    Forward {
        /// The packet to send.
        packet: Packet,
        /// Link-layer next hop.
        next_hop: NodeId,
    },
    /// The packet is addressed to this node — hand it to the transport.
    DeliverLocal(Packet),
    /// Call [`Aodv::on_timer`] with `id` at `at`.
    SetTimer {
        /// Timer identity to echo back.
        id: AodvTimer,
        /// Absolute firing time.
        at: SimTime,
    },
    /// The packet was dropped; recorded for statistics.
    Dropped {
        /// The dropped packet.
        packet: Packet,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A routing-table entry changed. Purely informational: reports route
    /// installs/refreshes (RREQ reverse routes, RREP forward routes, HELLO
    /// neighbour routes) and invalidations (link failure, RERR, HELLO
    /// loss), so observers can trace route churn.
    RouteChange {
        /// Route destination.
        dst: NodeId,
        /// Next hop (`None` once invalidated).
        next_hop: Option<NodeId>,
        /// Hop count of the entry (0 when invalidated).
        hop_count: u8,
        /// Whether the entry is valid after the change.
        valid: bool,
    },
}

/// Counters for diagnostics and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AodvStats {
    /// RREQ floods originated (not rebroadcasts).
    pub discoveries: u64,
    /// RREQ packets transmitted (originated + rebroadcast).
    pub rreq_sent: u64,
    /// RREP packets originated or forwarded.
    pub rrep_sent: u64,
    /// RERR packets originated or propagated.
    pub rerr_sent: u64,
    /// Data packets dropped by routing.
    pub data_drops: u64,
}

#[derive(Debug)]
struct Pending {
    retries: u32,
    /// The armed discovery timeout; `None` only between creation and the
    /// first [`Aodv::send_rreq`] for this destination.
    timer: Option<AodvTimer>,
    buffered: VecDeque<Packet>,
}

impl sim_core::Snapshotable for AodvTimer {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.0);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(AodvTimer(r.get()?))
    }
}

impl sim_core::Snapshotable for AodvStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.discoveries);
        w.put_u64(self.rreq_sent);
        w.put_u64(self.rrep_sent);
        w.put_u64(self.rerr_sent);
        w.put_u64(self.data_drops);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(AodvStats {
            discoveries: r.take_u64()?,
            rreq_sent: r.take_u64()?,
            rrep_sent: r.take_u64()?,
            rerr_sent: r.take_u64()?,
            data_drops: r.take_u64()?,
        })
    }
}

impl sim_core::Snapshotable for Pending {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u32(self.retries);
        w.put(&self.timer);
        w.put(&self.buffered);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Pending { retries: r.take_u32()?, timer: r.get()?, buffered: r.get()? })
    }
}

/// The AODV routing engine for one node.
///
/// Drive it with `route_packet` (locally-originated traffic),
/// `on_packet_received` (MAC deliveries), `on_link_failure` (MAC retry-limit
/// feedback) and `on_timer`; execute the returned [`AodvOutput`] actions.
#[derive(Debug)]
pub struct Aodv {
    addr: NodeId,
    cfg: AodvConfig,
    table: RouteTable,
    seq: u32,
    bcast_id: u32,
    seen: DetMap<(NodeId, u32), SimTime>,
    pending: DetMap<NodeId, Pending>,
    /// Last time each neighbour was heard (any packet), for HELLO-based
    /// liveness when beacons are enabled.
    last_heard: DetMap<NodeId, SimTime>,
    hello_timer: Option<AodvTimer>,
    timers: TimerSlab,
    uid: UidGen,
    stats: AodvStats,
}

impl Aodv {
    /// Creates the engine for node `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent.
    pub fn new(addr: NodeId, cfg: AodvConfig, uid: UidGen) -> Self {
        cfg.validate();
        Aodv {
            addr,
            cfg,
            table: RouteTable::new(),
            seq: 0,
            bcast_id: 0,
            seen: DetMap::new(),
            pending: DetMap::new(),
            last_heard: DetMap::new(),
            hello_timer: None,
            timers: TimerSlab::new(),
            uid,
            stats: AodvStats::default(),
        }
    }

    /// The routing table (read-only, for tests and diagnostics).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> AodvStats {
        self.stats
    }

    /// Whether a timer id set via [`AodvOutput::SetTimer`] has been neither
    /// cancelled nor fired. The driver consults this at its dispatch choke
    /// point to discard stale timer pops without entering the engine.
    pub fn timer_is_live(&self, id: AodvTimer) -> bool {
        self.timers.is_live(id.0)
    }

    /// Number of timers cancelled before firing (lazy tombstones whose
    /// queued events will pop stale).
    pub fn timers_cancelled(&self) -> u64 {
        self.timers.cancelled_count()
    }

    /// Whether a usable route to `dst` exists right now.
    pub fn has_route(&self, dst: NodeId, now: SimTime) -> bool {
        self.table.lookup(dst, now).is_some()
    }

    /// Expiry time of the currently valid route to `dst`, if one exists.
    /// Consumed by the runtime invariant checker to prove every forward
    /// rides a fresh route.
    pub fn route_valid_until(&self, dst: NodeId, now: SimTime) -> Option<SimTime> {
        self.table.lookup(dst, now).map(|r| r.expires)
    }

    /// Fault hook: wipes all routing state after a node crash — routes,
    /// pending discoveries (their timers become stale ids, which
    /// [`Aodv::on_timer`] ignores), duplicate-RREQ memory and neighbour
    /// liveness — and returns the data packets that sat buffered awaiting
    /// discovery, so the caller can account for them instead of losing them
    /// silently. Identity state (sequence number, broadcast id, the packet
    /// uid generator) survives: a revived node must never reuse packet
    /// identifiers, or neighbours' duplicate filters would eat its fresh
    /// traffic.
    pub fn reset_routes(&mut self) -> Vec<Packet> {
        let mut flushed = Vec::new();
        let mut dead_timers = Vec::new();
        for (_, pending) in self.pending.iter_mut() {
            flushed.extend(pending.buffered.drain(..));
            dead_timers.extend(pending.timer.take());
        }
        for id in dead_timers {
            self.timers.cancel(id.0);
        }
        self.pending.clear();
        self.table = RouteTable::new();
        self.seen.clear();
        self.last_heard.clear();
        if let Some(id) = self.hello_timer.take() {
            self.timers.cancel(id.0);
        }
        flushed
    }

    /// Serialises the engine's full state: routing table, sequence/broadcast
    /// counters, duplicate-RREQ memory, pending discoveries with their
    /// buffered packets, neighbour liveness, the timer slab and counters.
    pub fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.addr);
        w.put(&self.cfg);
        w.put(&self.table);
        w.put_u32(self.seq);
        w.put_u32(self.bcast_id);
        w.put(&self.seen);
        w.put(&self.pending);
        w.put(&self.last_heard);
        w.put(&self.hello_timer);
        w.put(&self.timers);
        w.put(&self.uid);
        w.put(&self.stats);
    }

    /// Rebuilds an engine from bytes written by [`Self::encode_state`].
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`] on truncated or out-of-domain input.
    pub fn decode_state(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Aodv {
            addr: r.get()?,
            cfg: r.get()?,
            table: r.get()?,
            seq: r.take_u32()?,
            bcast_id: r.take_u32()?,
            seen: r.get()?,
            pending: r.get()?,
            last_heard: r.get()?,
            hello_timer: r.get()?,
            timers: r.get()?,
            uid: r.get()?,
            stats: r.get()?,
        })
    }

    /// Routes a locally-originated packet: forward if a route exists,
    /// otherwise buffer it and start (or join) a route discovery.
    pub fn route_packet(&mut self, packet: Packet, now: SimTime) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        self.route_or_buffer(packet, now, &mut out);
        out
    }

    /// Handles a packet delivered by the MAC from neighbour `prev_hop`.
    pub fn on_packet_received(
        &mut self,
        packet: Packet,
        prev_hop: NodeId,
        now: SimTime,
    ) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        self.table.update_neighbor(prev_hop, now + self.cfg.active_route_timeout);
        self.last_heard.insert(prev_hop, now);
        match &packet.payload {
            Payload::Aodv(AodvMessage::Rreq(rreq)) => {
                let rreq = *rreq;
                self.handle_rreq(rreq, prev_hop, packet.ttl, now, &mut out);
            }
            Payload::Aodv(AodvMessage::Rrep(rrep)) => {
                let rrep = *rrep;
                self.handle_rrep(rrep, prev_hop, now, &mut out);
            }
            Payload::Aodv(AodvMessage::Rerr(rerr)) => {
                let rerr = rerr.clone();
                self.handle_rerr(&rerr, prev_hop, &mut out);
            }
            Payload::Aodv(AodvMessage::Hello(hello)) => {
                // Liveness only: refresh the neighbour route with the
                // advertised sequence number. Never forwarded (TTL 1).
                let lifetime = self
                    .cfg
                    .hello_interval
                    .map(|i| i.saturating_mul(u64::from(self.cfg.allowed_hello_loss) + 1))
                    .unwrap_or(self.cfg.active_route_timeout);
                if self.table.update(prev_hop, prev_hop, 1, hello.seq, now + lifetime) {
                    out.push(AodvOutput::RouteChange {
                        dst: prev_hop,
                        next_hop: Some(prev_hop),
                        hop_count: 1,
                        valid: true,
                    });
                }
            }
            Payload::Tcp(_) => self.handle_transit_data(packet, now, &mut out),
        }
        out
    }

    /// Handles MAC-layer link failure feedback: the frame for `packet` could
    /// not be delivered to `next_hop` after all retries.
    pub fn on_link_failure(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
    ) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        let broken = self.table.invalidate_via(next_hop);
        if !broken.is_empty() {
            for (dst, _, _) in &broken {
                out.push(AodvOutput::RouteChange {
                    dst: *dst,
                    next_hop: None,
                    hop_count: 0,
                    valid: false,
                });
            }
            let unreachable = broken.iter().map(|(d, s, _)| (*d, *s)).collect();
            self.send_rerr(unreachable, &mut out);
        }
        if packet.is_control() {
            // Lost routing control traffic is not retried.
            out.push(AodvOutput::Dropped { packet, reason: DropReason::NoRoute });
            return out;
        }
        if packet.src == self.addr {
            // We originated it: buffer and re-discover.
            self.route_or_buffer(packet, now, &mut out);
        } else {
            self.stats.data_drops += 1;
            out.push(AodvOutput::Dropped { packet, reason: DropReason::NoRoute });
        }
        out
    }

    /// Starts a route discovery toward `dst` if none is pending and no
    /// usable route exists — used by ELFN-style probing, where the caller
    /// wants a route re-established without having a packet to buffer.
    pub fn ensure_route(&mut self, dst: NodeId, now: SimTime) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        if dst == self.addr
            || self.table.lookup(dst, now).is_some()
            || self.pending.contains_key(&dst)
        {
            return out;
        }
        self.pending.insert(dst, Pending { retries: 0, timer: None, buffered: VecDeque::new() });
        self.stats.discoveries += 1;
        self.send_rreq(dst, now, &mut out);
        out
    }

    /// Starts periodic HELLO beaconing (no-op unless
    /// [`AodvConfig::hello_interval`] is set). Call once at node start-up
    /// and execute the returned actions.
    pub fn start_hello(&mut self, now: SimTime) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        if self.cfg.hello_interval.is_some() && self.hello_timer.is_none() {
            let id = self.alloc_timer();
            self.hello_timer = Some(id);
            // Stagger the very first beacon by the node-id-dependent uid
            // space is overkill; the MAC backoff desynchronises broadcasts.
            out.push(AodvOutput::SetTimer { id, at: now });
        }
        out
    }

    fn fire_hello(&mut self, now: SimTime, out: &mut AodvOutputs) {
        let Some(interval) = self.cfg.hello_interval else { return };
        // Beacon.
        self.seq += 1;
        let packet = Packet::with_ttl(
            self.uid.next(),
            self.addr,
            NodeId::BROADCAST,
            1,
            Payload::Aodv(AodvMessage::Hello(wire::Hello { seq: self.seq })),
        );
        out.push(AodvOutput::Forward { packet, next_hop: NodeId::BROADCAST });
        // Sweep for silent neighbours.
        let deadline = interval.saturating_mul(u64::from(self.cfg.allowed_hello_loss));
        let stale: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, &heard)| now.saturating_since(heard) > deadline)
            .map(|(&n, _)| n)
            .collect();
        for neighbour in stale {
            self.last_heard.remove(&neighbour);
            let broken = self.table.invalidate_via(neighbour);
            if !broken.is_empty() {
                for (dst, _, _) in &broken {
                    out.push(AodvOutput::RouteChange {
                        dst: *dst,
                        next_hop: None,
                        hop_count: 0,
                        valid: false,
                    });
                }
                let unreachable = broken.iter().map(|(d, s, _)| (*d, *s)).collect();
                self.send_rerr(unreachable, out);
            }
        }
        // Re-arm.
        let id = self.alloc_timer();
        self.hello_timer = Some(id);
        out.push(AodvOutput::SetTimer { id, at: now + interval });
    }

    /// A discovery timer fired.
    pub fn on_timer(&mut self, id: AodvTimer, now: SimTime) -> AodvOutputs {
        let mut out = AodvOutputs::new();
        if !self.timers.fire(id.0) {
            // Cancelled (or already consumed): a lazy tombstone popping.
            return out;
        }
        if self.hello_timer == Some(id) {
            self.hello_timer = None;
            self.fire_hello(now, &mut out);
            return out;
        }
        let dst = self.pending.iter().find(|(_, p)| p.timer == Some(id)).map(|(dst, _)| *dst);
        // A live timer always belongs to one owner; if a route appeared in
        // the meantime, flush and finish instead of retrying.
        let Some(dst) = dst else { return out };
        if self.table.lookup(dst, now).is_some() {
            self.finish_discovery(dst, now, &mut out);
            return out;
        }
        let retries = self.pending.get(&dst).map(|p| p.retries).unwrap_or(0);
        if retries >= self.cfg.rreq_retries {
            // Give up: drop everything buffered for this destination.
            if let Some(p) = self.pending.remove(&dst) {
                for packet in p.buffered {
                    self.stats.data_drops += 1;
                    out.push(AodvOutput::Dropped { packet, reason: DropReason::DiscoveryFailed });
                }
            }
            return out;
        }
        if let Some(p) = self.pending.get_mut(&dst) {
            p.retries += 1;
        }
        self.send_rreq(dst, now, &mut out);
        out
    }

    // ------------------------------------------------------------------

    fn route_or_buffer(&mut self, packet: Packet, now: SimTime, out: &mut AodvOutputs) {
        if packet.dst == self.addr {
            out.push(AodvOutput::DeliverLocal(packet));
            return;
        }
        if let Some(route) = self.table.lookup(packet.dst, now) {
            let next_hop = route.next_hop;
            self.table.refresh(packet.dst, now, self.cfg.active_route_timeout);
            self.table.refresh(next_hop, now, self.cfg.active_route_timeout);
            out.push(AodvOutput::Forward { packet, next_hop });
            return;
        }
        let dst = packet.dst;
        match self.pending.get_mut(&dst) {
            Some(p) => {
                if p.buffered.len() >= self.cfg.buffer_capacity {
                    if let Some(evicted) = p.buffered.pop_front() {
                        self.stats.data_drops += 1;
                        out.push(AodvOutput::Dropped {
                            packet: evicted,
                            reason: DropReason::BufferOverflow,
                        });
                    }
                }
                p.buffered.push_back(packet);
            }
            None => {
                let mut buffered = VecDeque::new();
                buffered.push_back(packet);
                self.pending.insert(dst, Pending { retries: 0, timer: None, buffered });
                self.stats.discoveries += 1;
                self.send_rreq(dst, now, out);
            }
        }
    }

    /// The flood TTL for a given retry attempt (expanding-ring search,
    /// RFC 3561 §6.4).
    fn ring_ttl(&self, retries: u32) -> u8 {
        let ttl =
            u32::from(self.cfg.ring_ttl_start) + retries * u32::from(self.cfg.ring_ttl_increment);
        if ttl > u32::from(self.cfg.ring_ttl_threshold) {
            self.cfg.rreq_ttl
        } else {
            (ttl as u8).min(self.cfg.rreq_ttl)
        }
    }

    fn send_rreq(&mut self, dst: NodeId, now: SimTime, out: &mut AodvOutputs) {
        self.seq += 1;
        self.bcast_id += 1;
        // Suppress our own flood when neighbours rebroadcast it back at us.
        self.seen.insert((self.addr, self.bcast_id), now + self.cfg.rreq_seen_lifetime);
        let dst_seq = self.table.entry(dst).map(|r| r.dst_seq).unwrap_or(0);
        let rreq = RouteRequest {
            origin: self.addr,
            origin_seq: self.seq,
            broadcast_id: self.bcast_id,
            dst,
            dst_seq,
            hop_count: 0,
        };
        let retries = self.pending.get(&dst).map(|p| p.retries).unwrap_or(0);
        let packet = Packet::with_ttl(
            self.uid.next(),
            self.addr,
            NodeId::BROADCAST,
            self.ring_ttl(retries),
            Payload::Aodv(AodvMessage::Rreq(rreq)),
        );
        self.stats.rreq_sent += 1;
        out.push(AodvOutput::Forward { packet, next_hop: NodeId::BROADCAST });
        // Arm (or re-arm) the discovery timeout with binary exponential wait.
        let wait = self.cfg.net_traversal_time.saturating_mul(1 << retries.min(8));
        let id = self.alloc_timer();
        if let Some(old) = self.pending.get_mut(&dst).and_then(|p| p.timer.replace(id)) {
            // Tombstone a previously armed timeout (no-op if it just fired).
            self.timers.cancel(old.0);
        }
        out.push(AodvOutput::SetTimer { id, at: now + wait });
    }

    fn handle_rreq(
        &mut self,
        mut rreq: RouteRequest,
        prev_hop: NodeId,
        ttl: u8,
        now: SimTime,
        out: &mut AodvOutputs,
    ) {
        if rreq.origin == self.addr {
            return; // our own flood reflected back
        }
        let key = (rreq.origin, rreq.broadcast_id);
        if let Some(&until) = self.seen.get(&key) {
            if until > now {
                return; // duplicate
            }
        }
        self.seen.insert(key, now + self.cfg.rreq_seen_lifetime);
        self.purge_seen(now);
        // Learn/refresh the reverse route to the origin.
        if self.table.update(
            rreq.origin,
            prev_hop,
            rreq.hop_count + 1,
            rreq.origin_seq,
            now + self.cfg.active_route_timeout,
        ) {
            out.push(AodvOutput::RouteChange {
                dst: rreq.origin,
                next_hop: Some(prev_hop),
                hop_count: rreq.hop_count + 1,
                valid: true,
            });
        }
        self.flush_if_pending(rreq.origin, now, out);
        if rreq.dst == self.addr {
            // We are the destination: answer with our own sequence number.
            if self.seq <= rreq.dst_seq {
                self.seq = rreq.dst_seq + 1;
            }
            let rrep =
                RouteReply { origin: rreq.origin, dst: self.addr, dst_seq: self.seq, hop_count: 0 };
            self.unicast_rrep(rrep, prev_hop, out);
            return;
        }
        // Fresh-enough cached route? Reply on the destination's behalf.
        if let Some(route) = self.table.lookup(rreq.dst, now) {
            if route.dst_seq >= rreq.dst_seq && route.dst_seq > 0 {
                let rrep = RouteReply {
                    origin: rreq.origin,
                    dst: rreq.dst,
                    dst_seq: route.dst_seq,
                    hop_count: route.hop_count,
                };
                let forward_hop = route.next_hop;
                self.table.add_precursor(rreq.dst, prev_hop);
                self.table.add_precursor(rreq.origin, forward_hop);
                self.unicast_rrep(rrep, prev_hop, out);
                return;
            }
        }
        // Rebroadcast the flood.
        if ttl > 1 {
            rreq.hop_count += 1;
            let packet = Packet::with_ttl(
                self.uid.next(),
                rreq.origin,
                NodeId::BROADCAST,
                ttl - 1,
                Payload::Aodv(AodvMessage::Rreq(rreq)),
            );
            self.stats.rreq_sent += 1;
            out.push(AodvOutput::Forward { packet, next_hop: NodeId::BROADCAST });
        }
    }

    fn handle_rrep(
        &mut self,
        mut rrep: RouteReply,
        prev_hop: NodeId,
        now: SimTime,
        out: &mut AodvOutputs,
    ) {
        // Learn the forward route to the destination.
        if self.table.update(
            rrep.dst,
            prev_hop,
            rrep.hop_count + 1,
            rrep.dst_seq,
            now + self.cfg.active_route_timeout,
        ) {
            out.push(AodvOutput::RouteChange {
                dst: rrep.dst,
                next_hop: Some(prev_hop),
                hop_count: rrep.hop_count + 1,
                valid: true,
            });
        }
        if rrep.origin == self.addr {
            self.finish_discovery(rrep.dst, now, out);
            return;
        }
        // Forward toward the origin along the reverse route.
        if let Some(route) = self.table.lookup(rrep.origin, now) {
            let toward_origin = route.next_hop;
            rrep.hop_count += 1;
            self.table.add_precursor(rrep.dst, toward_origin);
            self.table.add_precursor(rrep.origin, prev_hop);
            self.unicast_rrep_to(rrep, toward_origin, out);
        }
        // No reverse route: the RREP dies here.
    }

    fn handle_rerr(&mut self, rerr: &RouteError, prev_hop: NodeId, out: &mut AodvOutputs) {
        let mut invalidated = Vec::new();
        for &(dst, seq) in &rerr.unreachable {
            if self.table.invalidate_route(dst, prev_hop, seq) {
                out.push(AodvOutput::RouteChange {
                    dst,
                    next_hop: None,
                    hop_count: 0,
                    valid: false,
                });
                invalidated.push((dst, seq));
            }
        }
        if !invalidated.is_empty() {
            self.send_rerr(invalidated, out);
        }
    }

    fn handle_transit_data(&mut self, mut packet: Packet, now: SimTime, out: &mut AodvOutputs) {
        if packet.dst == self.addr {
            out.push(AodvOutput::DeliverLocal(packet));
            return;
        }
        if packet.ttl <= 1 {
            self.stats.data_drops += 1;
            out.push(AodvOutput::Dropped { packet, reason: DropReason::TtlExpired });
            return;
        }
        packet.ttl -= 1;
        if let Some(route) = self.table.lookup(packet.dst, now) {
            let next_hop = route.next_hop;
            self.table.refresh(packet.dst, now, self.cfg.active_route_timeout);
            self.table.refresh(next_hop, now, self.cfg.active_route_timeout);
            out.push(AodvOutput::Forward { packet, next_hop });
        } else {
            // Mid-path node with no route: RERR back and drop.
            let seq = self.table.entry(packet.dst).map(|r| r.dst_seq + 1).unwrap_or(0);
            let dst = packet.dst;
            self.stats.data_drops += 1;
            out.push(AodvOutput::Dropped { packet, reason: DropReason::NoRoute });
            self.send_rerr(vec![(dst, seq)], out);
        }
    }

    fn finish_discovery(&mut self, dst: NodeId, now: SimTime, out: &mut AodvOutputs) {
        if let Some(pending) = self.pending.remove(&dst) {
            if let Some(id) = pending.timer {
                // Tombstone the pending timeout (no-op if it just fired).
                self.timers.cancel(id.0);
            }
            for packet in pending.buffered {
                self.route_or_buffer(packet, now, out);
            }
        }
    }

    /// If `dst` became reachable as a side effect (e.g. reverse route from a
    /// RREQ), flush any traffic we had buffered for it.
    fn flush_if_pending(&mut self, dst: NodeId, now: SimTime, out: &mut AodvOutputs) {
        if self.pending.contains_key(&dst) && self.table.lookup(dst, now).is_some() {
            self.finish_discovery(dst, now, out);
        }
    }

    fn unicast_rrep(&mut self, rrep: RouteReply, next_hop: NodeId, out: &mut AodvOutputs) {
        self.unicast_rrep_to(rrep, next_hop, out);
    }

    fn unicast_rrep_to(&mut self, rrep: RouteReply, next_hop: NodeId, out: &mut AodvOutputs) {
        let packet = Packet::new(
            self.uid.next(),
            self.addr,
            rrep.origin,
            Payload::Aodv(AodvMessage::Rrep(rrep)),
        );
        self.stats.rrep_sent += 1;
        out.push(AodvOutput::Forward { packet, next_hop });
    }

    fn send_rerr(&mut self, unreachable: Vec<(NodeId, u32)>, out: &mut AodvOutputs) {
        let packet = Packet::with_ttl(
            self.uid.next(),
            self.addr,
            NodeId::BROADCAST,
            1,
            Payload::Aodv(AodvMessage::Rerr(RouteError { unreachable })),
        );
        self.stats.rerr_sent += 1;
        out.push(AodvOutput::Forward { packet, next_hop: NodeId::BROADCAST });
    }

    fn purge_seen(&mut self, now: SimTime) {
        if self.seen.len() > 1024 {
            self.seen.retain(|_, &mut until| until > now);
        }
    }

    fn alloc_timer(&mut self) -> AodvTimer {
        AodvTimer(self.timers.schedule())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;
    use wire::{FlowId, TcpSegment};

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn mk(addr: u16) -> Aodv {
        Aodv::new(n(addr), AodvConfig::default(), UidGen::new(n(addr)))
    }

    fn data(uid: u64, src: u16, dst: u16) -> Packet {
        Packet::new(
            uid,
            n(src),
            n(dst),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        )
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn find_rreq(out: &AodvOutputs) -> Option<&Packet> {
        out.iter().find_map(|o| match o {
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rreq(_))) =>
            {
                Some(packet)
            }
            _ => None,
        })
    }

    fn find_rrep(out: &AodvOutputs) -> Option<(&Packet, NodeId)> {
        out.iter().find_map(|o| match o {
            AodvOutput::Forward { packet, next_hop }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rrep(_))) =>
            {
                Some((packet, *next_hop))
            }
            _ => None,
        })
    }

    #[test]
    fn reset_routes_flushes_buffers_and_keeps_identity() {
        let mut a = mk(0);
        // Buffer two data packets behind a discovery.
        let _ = a.route_packet(data(1, 0, 2), t0());
        let _ = a.route_packet(data(2, 0, 2), t0());
        let pre_seq = a.seq;
        let pre_uid = a.uid.clone();
        let flushed = a.reset_routes();
        assert_eq!(flushed.iter().map(|p| p.uid).collect::<Vec<_>>(), vec![1, 2]);
        assert!(a.table().is_empty());
        assert_eq!(a.seq, pre_seq, "sequence number must survive a crash reset");
        assert_eq!(a.uid.clone().next(), pre_uid.clone().next(), "uid stream must not restart");
        // A fresh discovery starts cleanly afterwards.
        let out = a.route_packet(data(3, 0, 2), t0());
        assert!(find_rreq(&out).is_some());
    }

    #[test]
    fn route_valid_until_reports_the_entry_expiry() {
        let mut a = mk(0);
        let expires = t0() + SimDuration::from_millis(3000);
        a.table.update(n(2), n(1), 2, 5, expires);
        assert_eq!(a.route_valid_until(n(2), t0()), Some(expires));
        // Expired entries are not reported.
        assert_eq!(a.route_valid_until(n(2), expires), None);
        assert_eq!(a.route_valid_until(n(9), t0()), None);
    }

    #[test]
    fn no_route_triggers_discovery_and_buffers() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        assert!(find_rreq(&out).is_some());
        assert!(out.iter().any(|o| matches!(o, AodvOutput::SetTimer { .. })));
        assert_eq!(a.stats().discoveries, 1);
        // Second packet to the same destination joins the pending discovery.
        let out = a.route_packet(data(2, 0, 2), t0());
        assert!(find_rreq(&out).is_none(), "no second flood: {out:?}");
    }

    #[test]
    fn destination_replies_with_rrep() {
        let mut b = mk(2);
        let rreq = RouteRequest {
            origin: n(0),
            origin_seq: 1,
            broadcast_id: 1,
            dst: n(2),
            dst_seq: 0,
            hop_count: 0,
        };
        let pkt = Packet::with_ttl(
            9,
            n(0),
            NodeId::BROADCAST,
            64,
            Payload::Aodv(AodvMessage::Rreq(rreq)),
        );
        let out = b.on_packet_received(pkt, n(1), t0());
        let (rrep_pkt, hop) = find_rrep(&out).expect("destination must reply");
        assert_eq!(hop, n(1));
        match &rrep_pkt.payload {
            Payload::Aodv(AodvMessage::Rrep(r)) => {
                assert_eq!(r.origin, n(0));
                assert_eq!(r.dst, n(2));
                assert_eq!(r.hop_count, 0);
            }
            _ => unreachable!(),
        }
        // Reverse route to the origin was learned.
        assert!(b.has_route(n(0), t0()));
    }

    #[test]
    fn intermediate_rebroadcasts_rreq_once() {
        let mut m = mk(1);
        let rreq = RouteRequest {
            origin: n(0),
            origin_seq: 1,
            broadcast_id: 1,
            dst: n(5),
            dst_seq: 0,
            hop_count: 0,
        };
        let pkt = Packet::with_ttl(
            9,
            n(0),
            NodeId::BROADCAST,
            64,
            Payload::Aodv(AodvMessage::Rreq(rreq)),
        );
        let out = m.on_packet_received(pkt.clone(), n(0), t0());
        let fwd = find_rreq(&out).expect("must rebroadcast");
        match &fwd.payload {
            Payload::Aodv(AodvMessage::Rreq(r)) => assert_eq!(r.hop_count, 1),
            _ => unreachable!(),
        }
        assert_eq!(fwd.ttl, 63);
        // Duplicate suppressed.
        let out = m.on_packet_received(pkt, n(2), t0());
        assert!(find_rreq(&out).is_none());
    }

    #[test]
    fn full_discovery_flushes_buffered_packet() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        assert!(find_rreq(&out).is_some());
        // RREP comes back from neighbour 1 claiming a 1-hop route to 2.
        let rrep = RouteReply { origin: n(0), dst: n(2), dst_seq: 1, hop_count: 1 };
        let pkt = Packet::new(9, n(1), n(0), Payload::Aodv(AodvMessage::Rrep(rrep)));
        let out = a.on_packet_received(pkt, n(1), t0());
        let fwd: Vec<_> = out
            .iter()
            .filter(|o| matches!(o, AodvOutput::Forward { packet, .. } if packet.is_tcp_data()))
            .collect();
        assert_eq!(fwd.len(), 1, "buffered data must flush: {out:?}");
        match fwd[0] {
            AodvOutput::Forward { next_hop, .. } => assert_eq!(*next_hop, n(1)),
            _ => unreachable!(),
        }
        assert!(a.has_route(n(2), t0()));
    }

    #[test]
    fn intermediate_forwards_rrep_along_reverse_route() {
        let mut m = mk(1);
        // The RREQ from 0 passes through, teaching m the reverse route.
        let rreq = RouteRequest {
            origin: n(0),
            origin_seq: 1,
            broadcast_id: 1,
            dst: n(2),
            dst_seq: 0,
            hop_count: 0,
        };
        let pkt = Packet::with_ttl(
            8,
            n(0),
            NodeId::BROADCAST,
            64,
            Payload::Aodv(AodvMessage::Rreq(rreq)),
        );
        let _ = m.on_packet_received(pkt, n(0), t0());
        // The RREP from 2 arrives; must be forwarded to 0.
        let rrep = RouteReply { origin: n(0), dst: n(2), dst_seq: 1, hop_count: 0 };
        let pkt = Packet::new(9, n(2), n(0), Payload::Aodv(AodvMessage::Rrep(rrep)));
        let out = m.on_packet_received(pkt, n(2), t0());
        let (fwd, hop) = find_rrep(&out).expect("RREP must be forwarded");
        assert_eq!(hop, n(0));
        match &fwd.payload {
            Payload::Aodv(AodvMessage::Rrep(r)) => assert_eq!(r.hop_count, 1),
            _ => unreachable!(),
        }
        // m now has routes both ways.
        assert!(m.has_route(n(0), t0()) && m.has_route(n(2), t0()));
    }

    #[test]
    fn transit_data_forwarded_with_ttl_decrement() {
        let mut m = mk(1);
        m.table_mut_for_tests().update(
            n(2),
            n(2),
            1,
            1,
            t0() + sim_core::SimDuration::from_secs(10),
        );
        let out = m.on_packet_received(data(5, 0, 2), n(0), t0());
        match out.get(0).expect("one output expected") {
            AodvOutput::Forward { packet, next_hop } => {
                assert_eq!(*next_hop, n(2));
                assert_eq!(packet.ttl, wire::DEFAULT_TTL - 1);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn transit_data_without_route_drops_and_rerrs() {
        let mut m = mk(1);
        let out = m.on_packet_received(data(5, 0, 2), n(0), t0());
        assert!(out
            .iter()
            .any(|o| matches!(o, AodvOutput::Dropped { reason: DropReason::NoRoute, .. })));
        assert!(out.iter().any(|o| matches!(
            o,
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rerr(_)))
        )));
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut m = mk(1);
        let mut pkt = data(5, 0, 2);
        pkt.ttl = 1;
        let out = m.on_packet_received(pkt, n(0), t0());
        assert!(out
            .iter()
            .any(|o| matches!(o, AodvOutput::Dropped { reason: DropReason::TtlExpired, .. })));
    }

    #[test]
    fn link_failure_invalidates_and_rediscovers_for_source() {
        let mut a = mk(0);
        a.table_mut_for_tests().update(
            n(2),
            n(1),
            2,
            1,
            t0() + sim_core::SimDuration::from_secs(10),
        );
        let out = a.on_link_failure(data(5, 0, 2), n(1), t0());
        assert!(!a.has_route(n(2), t0()));
        // RERR went out and a fresh discovery started.
        assert!(out.iter().any(|o| matches!(
            o,
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rerr(_)))
        )));
        assert!(find_rreq(&out).is_some());
        assert_eq!(a.stats().rerr_sent, 1);
    }

    #[test]
    fn link_failure_mid_path_drops_foreign_packet() {
        let mut m = mk(1);
        m.table_mut_for_tests().update(
            n(2),
            n(2),
            1,
            1,
            t0() + sim_core::SimDuration::from_secs(10),
        );
        let out = m.on_link_failure(data(5, 0, 2), n(2), t0());
        assert!(out
            .iter()
            .any(|o| matches!(o, AodvOutput::Dropped { reason: DropReason::NoRoute, .. })));
        assert!(find_rreq(&out).is_none(), "mid-path node must not rediscover");
    }

    #[test]
    fn rerr_propagates_when_route_used() {
        let mut a = mk(0);
        a.table_mut_for_tests().update(
            n(5),
            n(1),
            3,
            4,
            t0() + sim_core::SimDuration::from_secs(10),
        );
        let rerr = RouteError { unreachable: vec![(n(5), 5)] };
        let pkt =
            Packet::with_ttl(9, n(1), NodeId::BROADCAST, 1, Payload::Aodv(AodvMessage::Rerr(rerr)));
        let out = a.on_packet_received(pkt, n(1), t0());
        assert!(!a.has_route(n(5), t0()));
        assert!(out.iter().any(|o| matches!(
            o,
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rerr(_)))
        )));
        // A RERR about routes we don't use is not propagated.
        let rerr2 = RouteError { unreachable: vec![(n(9), 1)] };
        let pkt2 = Packet::with_ttl(
            10,
            n(1),
            NodeId::BROADCAST,
            1,
            Payload::Aodv(AodvMessage::Rerr(rerr2)),
        );
        let out2 = a.on_packet_received(pkt2, n(1), t0());
        assert!(out2.iter().all(|o| !matches!(
            o,
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Rerr(_)))
        )));
    }

    #[test]
    fn discovery_timeout_retries_then_gives_up() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        let (id, at) = out
            .iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .unwrap();
        // First timeout: retry.
        let out = a.on_timer(id, at);
        assert!(find_rreq(&out).is_some());
        let (id2, at2) = out
            .iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .unwrap();
        assert!(at2 - at > sim_core::SimDuration::ZERO);
        // Keep timing out until the retry budget is exhausted; the final
        // timeout drops the buffered packet.
        let (mut id, mut at) = (id2, at2);
        let mut gave_up = false;
        for _ in 0..AodvConfig::default().rreq_retries + 1 {
            let out = a.on_timer(id, at);
            if out.iter().any(|o| {
                matches!(o, AodvOutput::Dropped { reason: DropReason::DiscoveryFailed, .. })
            }) {
                gave_up = true;
                break;
            }
            assert!(find_rreq(&out).is_some(), "must keep retrying: {out:?}");
            (id, at) = out
                .iter()
                .find_map(|o| match o {
                    AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                    _ => None,
                })
                .unwrap();
        }
        assert!(gave_up, "discovery must eventually give up");
    }

    #[test]
    fn buffer_overflow_evicts_oldest() {
        let cfg = AodvConfig { buffer_capacity: 2, ..AodvConfig::default() };
        let mut a = Aodv::new(n(0), cfg, UidGen::new(n(0)));
        let _ = a.route_packet(data(1, 0, 2), t0());
        let _ = a.route_packet(data(2, 0, 2), t0());
        let out = a.route_packet(data(3, 0, 2), t0());
        let overflow = out
            .iter()
            .find(|o| matches!(o, AodvOutput::Dropped { reason: DropReason::BufferOverflow, .. }));
        match overflow {
            Some(AodvOutput::Dropped { packet, .. }) => assert_eq!(packet.uid, 1),
            _ => panic!("expected overflow drop: {out:?}"),
        }
    }

    #[test]
    fn expanding_ring_grows_with_retries() {
        let cfg = AodvConfig { ring_ttl_start: 3, ..AodvConfig::default() };
        let mut a = Aodv::new(n(0), cfg, UidGen::new(n(0)));
        let out = a.route_packet(data(1, 0, 2), t0());
        let first = find_rreq(&out).unwrap().ttl;
        assert_eq!(first, 3);
        // First retry: +increment.
        let (id, at) = out
            .iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .unwrap();
        let out = a.on_timer(id, at);
        let second = find_rreq(&out).unwrap().ttl;
        assert_eq!(second, 3 + cfg.ring_ttl_increment);
        // Past the threshold, the full-TTL flood is used.
        let full = Aodv::new(n(1), cfg, UidGen::new(n(1))).ring_ttl(10);
        assert_eq!(full, cfg.rreq_ttl);
        // And the calibrated default disables the ring entirely.
        let default = Aodv::new(n(2), AodvConfig::default(), UidGen::new(n(2)));
        assert_eq!(default.ring_ttl(0), AodvConfig::default().rreq_ttl);
    }

    #[test]
    fn ensure_route_probes_once() {
        let mut a = mk(0);
        let out = a.ensure_route(n(2), t0());
        assert!(find_rreq(&out).is_some());
        // Idempotent while the discovery is pending.
        let out = a.ensure_route(n(2), t0());
        assert!(out.is_empty());
        // And a no-op for ourselves or known routes.
        assert!(a.ensure_route(n(0), t0()).is_empty());
    }

    #[test]
    fn discovery_completion_tombstones_the_timeout() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        let (id, at) = out
            .iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .unwrap();
        assert!(a.timer_is_live(id));
        // The RREP arrives before the timeout: discovery finishes and the
        // pending timeout becomes a tombstone.
        let rrep = RouteReply { origin: n(0), dst: n(2), dst_seq: 1, hop_count: 1 };
        let pkt = Packet::new(9, n(1), n(0), Payload::Aodv(AodvMessage::Rrep(rrep)));
        let _ = a.on_packet_received(pkt, n(1), t0());
        assert!(!a.timer_is_live(id), "completed discovery must kill its timer");
        assert_eq!(a.timers_cancelled(), 1);
        // The stale pop is ignored without starting a retry flood.
        let out = a.on_timer(id, at);
        assert!(out.is_empty(), "stale discovery timer must be ignored: {out:?}");
    }

    #[test]
    fn reset_routes_tombstones_pending_timers() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        let id = out
            .iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let _ = a.reset_routes();
        assert!(!a.timer_is_live(id));
        assert!(a.on_timer(id, t0()).is_empty());
    }

    #[test]
    fn own_rreq_echo_ignored() {
        let mut a = mk(0);
        let out = a.route_packet(data(1, 0, 2), t0());
        let rreq_pkt = find_rreq(&out).unwrap().clone();
        // A neighbour rebroadcasts our own flood back at us.
        let out = a.on_packet_received(rreq_pkt, n(1), t0());
        assert!(find_rreq(&out).is_none());
        assert!(find_rrep(&out).is_none());
    }

    impl Aodv {
        fn table_mut_for_tests(&mut self) -> &mut RouteTable {
            &mut self.table
        }
    }
}

#[cfg(test)]
mod hello_tests {
    use super::*;
    use sim_core::SimDuration;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn hello_cfg() -> AodvConfig {
        AodvConfig {
            hello_interval: Some(SimDuration::from_secs(1)),
            allowed_hello_loss: 2,
            ..AodvConfig::default()
        }
    }

    fn timer_of(out: &AodvOutputs) -> (AodvTimer, SimTime) {
        out.iter()
            .find_map(|o| match o {
                AodvOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .expect("timer expected")
    }

    fn hello_pkt(out: &AodvOutputs) -> Option<&Packet> {
        out.iter().find_map(|o| match o {
            AodvOutput::Forward { packet, .. }
                if matches!(packet.payload, Payload::Aodv(AodvMessage::Hello(_))) =>
            {
                Some(packet)
            }
            _ => None,
        })
    }

    #[test]
    fn disabled_by_default() {
        let mut a = Aodv::new(n(0), AodvConfig::default(), UidGen::new(n(0)));
        assert!(a.start_hello(SimTime::ZERO).is_empty());
    }

    #[test]
    fn beacons_periodically_with_ttl_one() {
        let mut a = Aodv::new(n(0), hello_cfg(), UidGen::new(n(0)));
        let out = a.start_hello(SimTime::ZERO);
        let (id, at) = timer_of(&out);
        let out = a.on_timer(id, at);
        let pkt = hello_pkt(&out).expect("hello beacon");
        assert_eq!(pkt.ttl, 1, "never forwarded");
        // Re-armed one interval later.
        let (_, next_at) = timer_of(&out);
        assert_eq!(next_at, at + SimDuration::from_secs(1));
    }

    #[test]
    fn hello_receipt_installs_neighbour_route() {
        let mut a = Aodv::new(n(0), hello_cfg(), UidGen::new(n(0)));
        let pkt = Packet::with_ttl(
            9,
            n(1),
            NodeId::BROADCAST,
            1,
            Payload::Aodv(AodvMessage::Hello(wire::Hello { seq: 7 })),
        );
        let _ = a.on_packet_received(pkt, n(1), SimTime::ZERO);
        let r = a.table().lookup(n(1), SimTime::ZERO).expect("neighbour route");
        assert_eq!(r.next_hop, n(1));
        assert_eq!(r.dst_seq, 7);
    }

    #[test]
    fn silent_neighbour_is_torn_down_with_rerr() {
        let mut a = Aodv::new(n(0), hello_cfg(), UidGen::new(n(0)));
        // Learn neighbour 1 and a 2-hop route through it.
        let hello = Packet::with_ttl(
            9,
            n(1),
            NodeId::BROADCAST,
            1,
            Payload::Aodv(AodvMessage::Hello(wire::Hello { seq: 1 })),
        );
        let _ = a.on_packet_received(hello, n(1), SimTime::ZERO);
        a.table_for_hello_tests().update(
            n(5),
            n(1),
            2,
            3,
            SimTime::ZERO + SimDuration::from_secs(30),
        );
        let out = a.start_hello(SimTime::ZERO);
        let (mut id, mut at) = timer_of(&out);
        // Fire beacons past the allowed-loss deadline (2 s) with silence.
        for _ in 0..4 {
            let out = a.on_timer(id, at);
            let got = timer_of(&out);
            let torn = out.iter().any(|o| {
                matches!(
                    o,
                    AodvOutput::Forward { packet, .. }
                        if matches!(packet.payload, Payload::Aodv(AodvMessage::Rerr(_)))
                )
            });
            if torn {
                assert!(a.table().lookup(n(5), at).is_none(), "route via 1 gone");
                return;
            }
            (id, at) = got;
        }
        panic!("silent neighbour never torn down");
    }

    impl Aodv {
        fn table_for_hello_tests(&mut self) -> &mut RouteTable {
            &mut self.table
        }
    }
}
