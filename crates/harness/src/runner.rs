//! Multi-seed experiment execution helpers.

use netstack::SimConfig;
use sim_core::SimDuration;

/// Shared settings for a batch of experiment runs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Virtual duration of each run.
    pub duration: SimDuration,
    /// Base simulator configuration (the seed field is overridden per run).
    pub base: SimConfig,
    /// Worker threads for batch execution: 1 = serial (the default),
    /// 0 = one per available core. Results are identical at any setting —
    /// every run owns a fresh simulator and outputs are collected in
    /// submission order.
    pub jobs: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seeds: vec![11, 23, 37, 53, 71],
            duration: SimDuration::from_secs(30),
            base: SimConfig::default(),
            jobs: 1,
        }
    }
}

impl ExperimentConfig {
    /// A configuration for quick smoke runs (fewer seeds, shorter runs).
    pub fn quick() -> Self {
        ExperimentConfig {
            seeds: vec![11, 23],
            duration: SimDuration::from_secs(10),
            base: SimConfig::default(),
            jobs: 1,
        }
    }

    /// Returns the configuration with `jobs` worker threads (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Per-run simulator configs, one per seed.
    pub fn sim_configs(&self) -> impl Iterator<Item = SimConfig> + '_ {
        self.seeds.iter().map(|&seed| SimConfig { seed, ..self.base })
    }
}

/// Mean and population standard deviation of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mean {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Mean {
    /// Formats as `mean ± std`, or `"n/a"` when no samples were observed —
    /// a zeroed mean would masquerade as a measured 0.0 in tables.
    pub fn pm(&self) -> String {
        if self.n == 0 {
            return "n/a".to_string();
        }
        format!("{:.1} ±{:.1}", self.mean, self.std_dev)
    }
}

/// Computes mean and standard deviation of the *finite* entries of
/// `samples`. Non-finite entries (NaN/∞ placeholders for runs that
/// produced no measurement) are excluded rather than poisoning the result.
///
/// Returns a zeroed [`Mean`] (with `n == 0`, rendering as `"n/a"`) when no
/// finite sample remains.
pub fn average(samples: &[f64]) -> Mean {
    let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    let n = finite.len();
    if n == 0 {
        return Mean::default();
    }
    let mean = finite.iter().sum::<f64>() / n as f64;
    let var = finite.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    Mean { mean, std_dev: var.sqrt(), n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_basics() {
        let m = average(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert!((m.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(m.n, 3);
        assert_eq!(average(&[]).n, 0);
    }

    #[test]
    fn configs_per_seed() {
        let cfg = ExperimentConfig::quick();
        let sims: Vec<_> = cfg.sim_configs().collect();
        assert_eq!(sims.len(), 2);
        assert_ne!(sims[0].seed, sims[1].seed);
    }

    #[test]
    fn pm_format() {
        let m = average(&[10.0, 10.0]);
        assert_eq!(m.pm(), "10.0 ±0.0");
    }

    #[test]
    fn empty_mean_renders_not_available() {
        // Regression: an empty sample set used to format as "0.0 ±0.0",
        // indistinguishable from a genuinely measured zero.
        assert_eq!(average(&[]).pm(), "n/a");
        assert_eq!(Mean::default().pm(), "n/a");
    }

    #[test]
    fn average_skips_non_finite_placeholders() {
        let m = average(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(m.n, 2, "only finite samples count");
        assert_eq!(m.mean, 2.0);
        let all_bad = average(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(all_bad.n, 0);
        assert_eq!(all_bad.pm(), "n/a");
    }

    #[test]
    fn with_jobs_builder() {
        let cfg = ExperimentConfig::quick().with_jobs(4);
        assert_eq!(cfg.jobs, 4);
        assert_eq!(ExperimentConfig::default().jobs, 1, "serial by default");
    }
}

/// Welch's t-statistic for the one-sided hypothesis "mean(a) > mean(b)".
///
/// Returns `None` if either sample is too small (< 2), contains a
/// non-finite entry (the placeholder for a run that produced no
/// measurement — silently skipping it would overstate the confidence), or
/// both variances are zero.
///
/// # Example
///
/// ```
/// use harness::welch_t;
/// let t = welch_t(&[10.0, 11.0, 12.0], &[1.0, 2.0, 3.0]).unwrap();
/// assert!(t > 5.0);
/// ```
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    if a.iter().chain(b).any(|x| !x.is_finite()) {
        return None;
    }
    let ma = average(a);
    let mb = average(b);
    // Convert population std-dev to sample variance (n-1 denominator).
    let var = |m: &Mean| m.std_dev * m.std_dev * m.n as f64 / (m.n as f64 - 1.0);
    let se2 = var(&ma) / ma.n as f64 + var(&mb) / mb.n as f64;
    if se2 == 0.0 {
        return None;
    }
    Some((ma.mean - mb.mean) / se2.sqrt())
}

/// Whether `mean(a) > mean(b)` with rough one-sided 95 % confidence
/// (Welch's t against the conservative small-sample critical value 2.0).
///
/// This is deliberately coarse — it guards headline claims like "Muzha
/// beats NewReno" against being seed noise, not a full statistics package.
pub fn significantly_greater(a: &[f64], b: &[f64]) -> bool {
    welch_t(a, b).is_some_and(|t| t > 2.0)
}

#[cfg(test)]
mod welch_tests {
    use super::*;

    #[test]
    fn separated_samples_are_significant() {
        let a = [100.0, 102.0, 98.0, 101.0, 99.0];
        let b = [80.0, 82.0, 78.0, 81.0, 79.0];
        assert!(significantly_greater(&a, &b));
        assert!(!significantly_greater(&b, &a));
    }

    #[test]
    fn overlapping_samples_are_not() {
        let a = [100.0, 90.0, 110.0, 95.0, 105.0];
        let b = [99.0, 92.0, 108.0, 96.0, 103.0];
        assert!(!significantly_greater(&a, &b));
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(welch_t(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn non_finite_placeholders_are_rejected() {
        // Regression: NaN placeholders for empty runs used to flow into the
        // t-statistic, making every comparison NaN (never "significant",
        // but also never an error — a silent loss of power).
        assert!(welch_t(&[1.0, 2.0, f64::NAN], &[0.0, 0.5]).is_none());
        assert!(welch_t(&[1.0, 2.0], &[0.0, f64::INFINITY]).is_none());
        assert!(!significantly_greater(&[f64::NAN, f64::NAN], &[0.0, 0.1]));
    }
}
