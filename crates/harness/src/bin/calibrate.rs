//! Calibration driver: runs reduced versions of every experiment and
//! prints the key paper-shape checks. Used during development; the full
//! regeneration lives in the bench crate and examples.
//!
//! ```sh
//! cargo run --release -p harness --bin calibrate -- \
//!     [sweep|coexist|cwnd|dynamics|all] [--jobs N] [--trace PATH] [--pcap PATH]
//! ```
//!
//! `--trace PATH` / `--pcap PATH` additionally capture the representative
//! 4-hop Muzha run through the trace subsystem (`crates/tracelog`) and
//! write it as ns-2 trace lines / a pcap file.

use harness::experiments::{
    coexistence, cwnd_traces, throughput_dynamics_batch, throughput_vs_hops, CoexistKind,
    SweepMetric,
};
use harness::tracecap::{self, TraceFormat};
use harness::ExperimentConfig;
use netstack::{SimConfig, TcpVariant};
use sim_core::{SimDuration, SimTime};
use tracelog::{TraceEntry, TraceFilter};

/// Flags that consume the following argument (so it is not the positional
/// experiment selector).
const VALUE_FLAGS: [&str; 3] = ["--jobs", "--trace", "--pcap"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !(a.starts_with("--") || i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str()))
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");
    let jobs = parse_jobs(&args);
    let trace_path = parse_flag(&args, "--trace");
    let pcap_path = parse_flag(&args, "--pcap");

    if which == "sweep" || which == "all" {
        let cfg = ExperimentConfig {
            seeds: vec![11, 23, 37, 53, 71],
            duration: SimDuration::from_secs(30),
            base: SimConfig::default(),
            jobs,
        };
        let sweep = throughput_vs_hops(&[4, 8, 16, 24, 32], &[4, 8, 32], &TcpVariant::PAPER, &cfg);
        for w in [4u32, 8, 32] {
            println!("== Throughput (kbps) vs hops, window_={w} (Fig 5.8-5.10) ==");
            println!("{}", sweep.render(w, SweepMetric::ThroughputKbps));
            println!("== Retransmissions vs hops, window_={w} (Fig 5.11-5.13) ==");
            println!("{}", sweep.render(w, SweepMetric::Retransmissions));
        }
    }

    if which == "coexist" || which == "all" {
        let cfg = ExperimentConfig {
            seeds: vec![11, 23, 37, 53, 71],
            duration: SimDuration::from_secs(50),
            base: SimConfig::default(),
            jobs,
        };
        let pairs = [
            CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Vegas },
            CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha },
        ];
        let result = coexistence(&[4, 6, 8], &pairs, &cfg);
        println!("== Coexistence on cross topology (Figs 5.16-5.18) ==");
        println!("{}", result.render());
    }

    if which == "cwnd" || which == "all" {
        for hops in [4usize, 8, 16] {
            let traces = cwnd_traces(
                hops,
                &TcpVariant::PAPER,
                SimDuration::from_secs(10),
                SimConfig::default(),
            );
            println!("== cwnd summary, {hops}-hop chain (Figs 5.2-5.7) ==");
            for t in traces {
                let mean = t.mean_cwnd(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0));
                let sd = t.cwnd_std_dev(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0));
                println!("  {:>8}: mean cwnd {:5.2}  std {:5.2}", t.variant.name(), mean, sd);
            }
        }
    }

    if which == "dynamics" || which == "all" {
        println!("== Throughput dynamics tail fairness (Figs 5.19-5.22) ==");
        let results = throughput_dynamics_batch(
            &TcpVariant::PAPER,
            SimDuration::from_secs(30),
            SimDuration::from_secs(1),
            SimConfig::default(),
            jobs,
        );
        for result in &results {
            println!(
                "  {:>8}: fairness(last 10s of 3-flow phase) = {:.3}",
                result.variant.name(),
                result.tail_fairness(10)
            );
        }
    }

    if trace_path.is_some() || pcap_path.is_some() {
        println!("== Trace capture (4-hop Muzha chain, 10 s) ==");
        let (log, _) = tracecap::capture_chain(
            4,
            TcpVariant::Muzha,
            SimDuration::from_secs(10),
            SimConfig::default(),
            TraceFilter::all(),
        );
        let entries: Vec<TraceEntry> = log.iter().copied().collect();
        if let Some(path) = trace_path {
            std::fs::write(&path, tracecap::render(&entries, TraceFormat::Ns2))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("  wrote {} ns-2 trace lines to {path}", entries.len());
        }
        if let Some(path) = pcap_path {
            std::fs::write(&path, tracecap::render(&entries, TraceFormat::Pcap))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("  wrote {} pcap records to {path}", entries.len());
        }
    }
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}

/// Parses `--jobs N` (or `--jobs=N`); defaults to 1 (serial).
fn parse_jobs(args: &[String]) -> usize {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().expect("--jobs expects a number");
        }
        if a == "--jobs" {
            let v = args.get(i + 1).expect("--jobs expects a number");
            return v.parse().expect("--jobs expects a number");
        }
    }
    1
}
