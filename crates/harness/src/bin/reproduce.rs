//! One-shot reproduction: regenerates every table and figure of the paper
//! into an output directory, as both human-readable text and plottable CSV.
//!
//! ```sh
//! cargo run --release -p harness --bin reproduce -- [OUT_DIR] [--quick] [--jobs N]
//! ```
//!
//! `OUT_DIR` defaults to `results/`. `--quick` uses fewer seeds and shorter
//! runs (minutes instead of tens of minutes). `--jobs N` fans the
//! independent `(experiment, variant, seed)` runs across `N` worker
//! threads (`0` = one per core); every output file is byte-identical to a
//! serial (`--jobs 1`, the default) run.
//!
//! `--trace PATH` and/or `--pcap PATH` additionally capture the
//! representative 4-hop Muzha run through the trace subsystem and write it
//! as ns-2 trace lines / a pcap file (see `crates/tracelog`).

use std::fs;
use std::path::{Path, PathBuf};

use harness::experiments::{
    coexistence, cwnd_traces_batch, throughput_dynamics_batch, throughput_vs_hops, CoexistKind,
    SweepMetric,
};
use harness::tracecap::{self, TraceFormat};
use harness::{export, ExperimentConfig};
use netstack::{SimConfig, TcpVariant};
use sim_core::{SimDuration, SimTime};
use tracelog::{TraceEntry, TraceFilter};

/// Flags that consume the following argument (so it is not the OUT_DIR
/// positional).
const VALUE_FLAGS: [&str; 3] = ["--jobs", "--trace", "--pcap"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = parse_jobs(&args);
    let trace_path = parse_flag(&args, "--trace");
    let pcap_path = parse_flag(&args, "--pcap");
    let out_dir: PathBuf = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && !is_flag_value(&args, i))
        .map(|(_, a)| PathBuf::from(a))
        .next()
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&out_dir).expect("create output directory");

    let (seeds, chain_secs, cross_secs, hops): (Vec<u64>, u64, u64, Vec<usize>) = if quick {
        (vec![11, 23], 10, 15, vec![4, 8, 16])
    } else {
        (vec![11, 23, 37, 53, 71], 30, 50, vec![4, 8, 12, 16, 20, 24, 28, 32])
    };

    // ---- Figs 5.2–5.7: cwnd traces ------------------------------------
    println!("[1/4] cwnd traces (Figs 5.2-5.7)...");
    let cwnd_hops = [4usize, 8, 16];
    let all_traces = cwnd_traces_batch(
        &cwnd_hops,
        &TcpVariant::PAPER,
        SimDuration::from_secs(10),
        SimConfig::default(),
        jobs,
    );
    let mut cwnd_txt = String::new();
    for (h, traces) in cwnd_hops.iter().zip(&all_traces) {
        cwnd_txt.push_str(&format!("== {h}-hop chain ==\n"));
        for t in traces {
            cwnd_txt.push_str(&format!(
                "{:>8}: mean cwnd {:5.2} (2-10 s), oscillation {:5.2}\n",
                t.variant.name(),
                t.mean_cwnd(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0)),
                t.cwnd_std_dev(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0)),
            ));
            write(
                &out_dir,
                &format!("fig5_2_cwnd_{}_{}hop.csv", t.variant.name().to_lowercase(), h),
                &export::cwnd_csv(t, 0.1, 10.0),
            );
        }
    }
    write(&out_dir, "fig5_2_to_5_7_cwnd_summary.txt", &cwnd_txt);

    // ---- Figs 5.8–5.13: chain sweep ------------------------------------
    println!("[2/4] chain sweep (Figs 5.8-5.13)...");
    let cfg = ExperimentConfig {
        seeds: seeds.clone(),
        duration: SimDuration::from_secs(chain_secs),
        base: SimConfig::default(),
        jobs,
    };
    let sweep = throughput_vs_hops(&hops, &[4, 8, 32], &TcpVariant::PAPER, &cfg);
    let mut sweep_txt = String::new();
    for w in [4u32, 8, 32] {
        sweep_txt.push_str(&format!("== throughput kbps, window {w} (Figs 5.8-5.10) ==\n"));
        sweep_txt.push_str(&sweep.render(w, SweepMetric::ThroughputKbps));
        sweep_txt.push_str(&format!("\n== retransmissions, window {w} (Figs 5.11-5.13) ==\n"));
        sweep_txt.push_str(&sweep.render(w, SweepMetric::Retransmissions));
        sweep_txt.push('\n');
    }
    write(&out_dir, "fig5_8_to_5_13_chain_sweep.txt", &sweep_txt);
    write(&out_dir, "fig5_8_to_5_13_chain_sweep.csv", &export::sweep_csv(&sweep));

    // ---- Figs 5.15–5.18: coexistence -----------------------------------
    println!("[3/4] coexistence (Figs 5.15-5.18)...");
    let cfg = ExperimentConfig {
        seeds: seeds.clone(),
        duration: SimDuration::from_secs(cross_secs),
        base: SimConfig::default(),
        jobs,
    };
    let pairs = [
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Vegas },
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha },
    ];
    let coexist = coexistence(&[4, 6, 8], &pairs, &cfg);
    write(&out_dir, "fig5_15_to_5_18_coexistence.txt", &coexist.render());
    write(&out_dir, "fig5_15_to_5_18_coexistence.csv", &export::coexist_csv(&coexist));

    // ---- Figs 5.19–5.22: dynamics --------------------------------------
    println!("[4/4] throughput dynamics (Figs 5.19-5.22)...");
    let results = throughput_dynamics_batch(
        &TcpVariant::PAPER,
        SimDuration::from_secs(30),
        SimDuration::from_secs(1),
        SimConfig::default(),
        jobs,
    );
    let mut dyn_txt = String::new();
    for result in &results {
        dyn_txt.push_str(&format!(
            "{:>8}: tail fairness {:.3}, per-flow segments {:?}\n",
            result.variant.name(),
            result.tail_fairness(10),
            result.reports.iter().map(|r| r.delivered_segments).collect::<Vec<_>>(),
        ));
        write(
            &out_dir,
            &format!("fig5_19_dynamics_{}.csv", result.variant.name().to_lowercase()),
            &export::dynamics_csv(result),
        );
    }
    write(&out_dir, "fig5_19_to_5_22_dynamics.txt", &dyn_txt);

    // ---- Optional trace capture ----------------------------------------
    if trace_path.is_some() || pcap_path.is_some() {
        let trace_secs = if quick { 2 } else { 10 };
        println!("[+] trace capture (4-hop Muzha chain, {trace_secs} s)...");
        let (log, _) = tracecap::capture_chain(
            4,
            TcpVariant::Muzha,
            SimDuration::from_secs(trace_secs),
            SimConfig::default(),
            TraceFilter::all(),
        );
        let entries: Vec<TraceEntry> = log.iter().copied().collect();
        if let Some(path) = trace_path {
            fs::write(&path, tracecap::render(&entries, TraceFormat::Ns2))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("    wrote {} ns-2 trace lines to {path}", entries.len());
        }
        if let Some(path) = pcap_path {
            fs::write(&path, tracecap::render(&entries, TraceFormat::Pcap))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("    wrote {} pcap records to {path}", entries.len());
        }
    }

    println!("done — results in {}", out_dir.display());
}

/// Parses `--jobs N` (or `--jobs=N`) from the argument list; defaults to 1
/// (serial).
fn parse_jobs(args: &[String]) -> usize {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().expect("--jobs expects a number");
        }
        if a == "--jobs" {
            let v = args.get(i + 1).expect("--jobs expects a number");
            return v.parse().expect("--jobs expects a number");
        }
    }
    1
}

/// Whether `args[i]` is the value following a bare value-taking flag.
fn is_flag_value(args: &[String], i: usize) -> bool {
    i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str())
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}

fn write(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
