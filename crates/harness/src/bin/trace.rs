//! Trace capture CLI: runs a single-flow chain scenario with the trace
//! subsystem enabled and emits the capture as ns-2 trace lines, a pcap
//! file, or CSV.
//!
//! ```sh
//! cargo run --release -p harness --bin trace -- \
//!     [--hops N] [--variant NAME] [--secs S] [--seed S] [--quick] \
//!     [--topology SPEC] [--mobility SPEC] [--shards N] \
//!     [--format ns2|pcap|csv] [--follow-flow F] [--last N] [--out PATH]
//! ```
//!
//! Defaults: a 4-hop chain, one Muzha flow, 10 virtual seconds, ns-2
//! format on stdout. `--quick` shortens the run to 2 s (used by the CI
//! smoke job). `--follow-flow F` keeps only records attributable to flow
//! `F`; `--last N` keeps only the final `N` records. `--out` writes to a
//! file instead of stdout; pcap output is binary and requires it.
//!
//! `--topology SPEC` (e.g. `grid:4x4`, `random-disc:40`,
//! `city-blocks:4x4@16`) swaps the chain for a generated topology, with
//! one flow between the two most-separated nodes; `--mobility SPEC`
//! (`static`, `waypoint`, `waypoint:1-20@30`) sets every node roaming.
//! `--shards N` (N > 1) captures under the conservative sharded scheduler;
//! the emitted trace is bit-identical to a serial capture by construction.

use harness::tracecap::{self, TraceFormat};
use netstack::{MobilitySpec, SimConfig, TcpVariant, TopologySpec};
use sim_core::SimDuration;
use tracelog::{TraceEntry, TraceFilter};
use wire::FlowId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    let hops: usize = parse_flag(&args, "--hops").map_or(4, |v| v.parse().expect("--hops number"));
    let variant = parse_flag(&args, "--variant").map_or(TcpVariant::Muzha, |v| {
        tracecap::variant_by_name(&v)
            .unwrap_or_else(|| panic!("unknown variant {v:?}; known: {:?}", TcpVariant::ALL))
    });
    let secs: u64 = parse_flag(&args, "--secs")
        .map_or(if quick { 2 } else { 10 }, |v| v.parse().expect("--secs number"));
    let seed: Option<u64> = parse_flag(&args, "--seed").map(|v| v.parse().expect("--seed number"));
    let format = parse_flag(&args, "--format").map_or(TraceFormat::Ns2, |v| {
        TraceFormat::parse(&v).unwrap_or_else(|| panic!("unknown format {v:?}; want ns2|pcap|csv"))
    });
    let follow: Option<FlowId> = parse_flag(&args, "--follow-flow")
        .map(|v| FlowId::new(v.parse().expect("--follow-flow number")));
    let last: Option<usize> =
        parse_flag(&args, "--last").map(|v| v.parse().expect("--last number"));
    let out = parse_flag(&args, "--out");
    let topology: Option<TopologySpec> = parse_flag(&args, "--topology")
        .map(|v| TopologySpec::parse(&v).unwrap_or_else(|e| panic!("--topology: {e}")));
    let mobility: Option<MobilitySpec> = parse_flag(&args, "--mobility")
        .map(|v| MobilitySpec::parse(&v).unwrap_or_else(|e| panic!("--mobility: {e}")));
    let shards: usize =
        parse_flag(&args, "--shards").map_or(1, |v| v.parse().expect("--shards number"));

    let mut cfg = SimConfig::default();
    if shards > 1 {
        cfg.scheduler = sim_core::SchedulerKind::Sharded;
        cfg.shards = shards;
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let mut filter = TraceFilter::all();
    if let Some(flow) = follow {
        filter = filter.flow(flow);
    }

    let (log, flow) = if let Some(spec) = topology {
        cfg.topology = spec;
        cfg.mobility = mobility.unwrap_or_default();
        eprintln!(
            "capturing {spec} topology ({} nodes, {} mobility), {} flow, {secs} s virtual...",
            spec.node_count(),
            cfg.mobility,
            variant.name()
        );
        tracecap::capture_topology(variant, SimDuration::from_secs(secs), cfg, filter)
    } else {
        assert!(mobility.is_none(), "--mobility needs --topology");
        eprintln!("capturing {hops}-hop chain, {} flow, {secs} s virtual...", variant.name());
        tracecap::capture_chain(hops, variant, SimDuration::from_secs(secs), cfg, filter)
    };
    eprintln!("flow {flow}: {} records seen, {} kept", log.seen(), log.kept());

    let entries: Vec<TraceEntry> = tracecap::tail(log.iter().copied().collect(), last);
    let bytes = tracecap::render(&entries, format);

    match out {
        Some(path) => {
            std::fs::write(&path, &bytes).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {} records ({} bytes) to {path}", entries.len(), bytes.len());
        }
        None => {
            assert!(
                !format.is_binary(),
                "pcap output is binary; pass --out PATH instead of writing to stdout"
            );
            // Tolerate a closed pipe (`trace ... | head`) instead of
            // panicking mid-write.
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(&bytes);
        }
    }
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}
