//! Model-checker CLI: exhaustively explores the bounded interleavings of a
//! `.scn` scenario script under the runtime invariant checker and emits a
//! machine-readable verdict.
//!
//! ```sh
//! cargo run --release -p harness --bin mc -- --script PATH.scn \
//!     [--tie-window START:END] [--max-branches N] [--max-depth N] \
//!     [--shift-window SECS] [--shift-steps N] [--report PATH] [--quiet]
//! ```
//!
//! The run follows the scenario-corpus convention: a 4-hop chain, one
//! NewReno flow end to end, the script's seed and duration. `--tie-window`
//! bounds which same-instant ties become choice points (virtual seconds,
//! e.g. `3.9:4.5`); without it every tie in the run branches, which is
//! rarely tractable. `--shift-window`/`--shift-steps` additionally explore
//! fault placements shifted on a grid of that half-width. `--report PATH`
//! writes the canonical branch log (byte-identical across runs of the same
//! exploration — CI diffs it to pin determinism).
//!
//! `--resume` (requires `--tie-window`) switches to checkpointed branch
//! resume: the shared prefix before the window runs once per placement, is
//! snapshotted, and every branch restores the snapshot and replays only
//! its suffix. Verdicts are bit-identical to full replay; the saved event
//! count is reported on stderr.
//!
//! The verdict block goes to stdout. On a violation the counter-example's
//! decision vector and a flight-recorder dump of the lead-up window are
//! printed, and the exit code is 2; a truncated (non-exhaustive) clean
//! search exits 3; a proof exits 0.

use faultline::mc::McConfig;
use faultline::ScenarioScript;
use harness::mc::{explore_scenario, explore_scenario_resumed, flight_recorder_dump};
use sim_core::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let script_path = parse_flag(&args, "--script").expect("--script PATH.scn is required");
    let text =
        std::fs::read_to_string(&script_path).unwrap_or_else(|e| panic!("read {script_path}: {e}"));
    let script =
        ScenarioScript::parse(&text).unwrap_or_else(|e| panic!("parse {script_path}: {e}"));

    let mut cfg = McConfig::default();
    if let Some(window) = parse_flag(&args, "--tie-window") {
        let (start, end) = window
            .split_once(':')
            .unwrap_or_else(|| panic!("--tie-window wants START:END seconds, got {window:?}"));
        let start: f64 = start.parse().expect("--tie-window start seconds");
        let end: f64 = end.parse().expect("--tie-window end seconds");
        assert!(start <= end, "--tie-window start must not exceed end");
        cfg.tie_window = Some((SimTime::from_secs_f64(start), SimTime::from_secs_f64(end)));
    }
    if let Some(v) = parse_flag(&args, "--max-branches") {
        cfg.max_branches = v.parse().expect("--max-branches number");
    }
    if let Some(v) = parse_flag(&args, "--max-depth") {
        cfg.max_depth = v.parse().expect("--max-depth number");
    }
    if let Some(v) = parse_flag(&args, "--shift-window") {
        let secs: f64 = v.parse().expect("--shift-window seconds");
        cfg.shift_window_ns = sim_core::SimDuration::from_secs_f64(secs).as_nanos();
    }
    if let Some(v) = parse_flag(&args, "--shift-steps") {
        cfg.shift_steps = v.parse().expect("--shift-steps number");
    }
    let report = parse_flag(&args, "--report");
    let quiet = args.iter().any(|a| a == "--quiet");
    let resume = args.iter().any(|a| a == "--resume");
    assert!(
        !resume || cfg.tie_window.is_some(),
        "--resume needs --tie-window: the checkpoint sits at the window start"
    );

    if !quiet {
        eprintln!(
            "exploring {} (window {:?}, max {} branches, depth {}, {} placement step(s){})...",
            script.name,
            cfg.tie_window,
            cfg.max_branches,
            cfg.max_depth,
            cfg.shift_steps,
            if resume { ", checkpointed" } else { "" }
        );
    }
    let verdict = if resume {
        let (verdict, stats) = explore_scenario_resumed(&script, &cfg);
        if !quiet {
            eprintln!(
                "checkpoint resume: {} events dispatched ({} prefix + {} replayed) vs {} for full replay",
                stats.resumed_events(),
                stats.prefix_events,
                stats.replayed_events,
                stats.full_replay_events
            );
        }
        verdict
    } else {
        explore_scenario(&script, &cfg)
    };
    if !quiet {
        eprintln!(
            "{}: {} branches explored, {} pruned, {} choice points deep",
            verdict.status(),
            verdict.branches_explored,
            verdict.branches_pruned,
            verdict.max_choice_points
        );
    }

    print!("{}", verdict.render());
    if verdict.counter_example.is_some() {
        if let Some(dump) = flight_recorder_dump(&script, &cfg, &verdict) {
            print!("{dump}");
        }
    }
    if let Some(path) = report {
        std::fs::write(&path, verdict.render_log()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if !quiet {
            eprintln!("branch log ({} branches) written to {path}", verdict.log.len());
        }
    }

    std::process::exit(match (verdict.counter_example.is_some(), verdict.truncated) {
        (true, _) => 2,
        (false, true) => 3,
        (false, false) => 0,
    });
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}
