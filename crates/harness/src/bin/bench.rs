//! Simulator performance benchmark: runs the standard paper scenarios,
//! measures wall time and deterministic event counts, and writes
//! `BENCH_sim.json` so every PR has a perf trajectory to answer to.
//!
//! ```sh
//! cargo run --release -p harness --bin bench -- [--quick] [--jobs N] [--out PATH]
//! ```
//!
//! Each scenario is run twice through the batch engine — serial
//! (`jobs = 1`) and parallel (`--jobs`, default one worker per core) — so
//! the report carries both per-run events/sec (a scheduling-independent
//! simulator-speed number: virtual events from [`sim_core::RunPerf`] over
//! serial wall time) and the batch speed-up the thread pool buys.
//! The event counts are asserted identical between the two passes; a
//! mismatch would mean parallel execution changed simulation behaviour.

use faultline::InvariantChecker;
use harness::{run_batch, WallClock};
use netstack::{
    topology, FlowSpec, IndexKind, MobilitySpec, SimConfig, Simulator, TcpVariant, TopologySpec,
};
use phy::Channel;
use sim_core::{DriverQueue, RunPerf, SchedulerKind, SimDuration, SimRng, SimTime};
use tracelog::TraceLog;
use wire::NodeId;

/// One standard scenario: a named topology + flow set, run per seed.
struct Scenario {
    name: &'static str,
    seeds: Vec<u64>,
    duration: SimDuration,
    run: fn(SimConfig, SimDuration) -> RunPerf,
}

fn chain_run(cfg: SimConfig, duration: SimDuration) -> RunPerf {
    let mut sim = Simulator::new(topology::chain(8), cfg);
    let (src, dst) = topology::chain_flow(8);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    sim.run_until(SimTime::ZERO + duration);
    sim.perf()
}

fn cross_run(cfg: SimConfig, duration: SimDuration) -> RunPerf {
    let mut sim = Simulator::new(topology::cross(4), cfg);
    let (hs, hd) = topology::cross_horizontal_flow(4);
    let (vs, vd) = topology::cross_vertical_flow(4);
    sim.add_flow(FlowSpec::new(hs, hd, TcpVariant::NewReno));
    sim.add_flow(FlowSpec::new(vs, vd, TcpVariant::Muzha));
    sim.run_until(SimTime::ZERO + duration);
    sim.perf()
}

/// Runs the 8-hop chain scenario with or without a full trace log
/// installed; returns the deterministic event digest and the number of
/// records the log kept.
fn chain_hash_run(cfg: SimConfig, duration: SimDuration, traced: bool) -> (u64, usize) {
    let mut sim = Simulator::new(topology::chain(8), cfg);
    let (src, dst) = topology::chain_flow(8);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    if traced {
        sim.install_trace_log(TraceLog::new());
    }
    sim.run_until(SimTime::ZERO + duration);
    let kept = sim.trace_log().map_or(0, tracelog::TraceLog::len);
    (sim.trace_hash(), kept)
}

/// The classic hold model for scheduler microbenchmarks: keep the queue at
/// a steady size and repeatedly pop the earliest event, pushing a
/// replacement at `now + draw`. The increment distribution decides which
/// access pattern the queue sees.
#[derive(Clone, Copy, Debug)]
enum HoldDist {
    /// Uniform increments — the calendar queue's best case.
    Uniform,
    /// 90% near-immediate, 10% far — MAC-timer-like burstiness.
    Bursty,
    /// Mostly short with rare multi-second outliers — retransmission-timer
    /// tails that force lap scans / direct search in the calendar.
    FarFuture,
}

impl HoldDist {
    fn name(self) -> &'static str {
        match self {
            HoldDist::Uniform => "uniform",
            HoldDist::Bursty => "bursty",
            HoldDist::FarFuture => "far_future",
        }
    }

    fn draw(self, rng: &mut SimRng) -> SimDuration {
        match self {
            HoldDist::Uniform => SimDuration::from_nanos(u64::from(rng.below(1_000_000))),
            HoldDist::Bursty => {
                if rng.chance(0.9) {
                    SimDuration::from_nanos(u64::from(rng.below(10_000)))
                } else {
                    SimDuration::from_nanos(u64::from(rng.below(50_000_000)))
                }
            }
            HoldDist::FarFuture => {
                if rng.chance(0.99) {
                    SimDuration::from_nanos(u64::from(rng.below(1_000_000)))
                } else {
                    SimDuration::from_secs(1 + u64::from(rng.below(4)))
                }
            }
        }
    }
}

/// Hold-model ops/sec for one scheduler at one distribution. Both
/// schedulers see the identical seeded increment stream.
fn hold_ops_per_sec(kind: SchedulerKind, dist: HoldDist, size: usize, ops: usize) -> f64 {
    let mut rng = SimRng::new(0x686f6c64); // "hold"
    let mut queue = DriverQueue::new(kind);
    for i in 0..size {
        queue.push(SimTime::ZERO + dist.draw(&mut rng), i as u64);
    }
    let clock = WallClock::start();
    for i in 0..ops {
        let (now, _) = queue.pop().expect("hold model keeps the queue non-empty");
        queue.push(now + dist.draw(&mut rng), i as u64);
    }
    ops as f64 / clock.elapsed_secs().max(1e-9)
}

/// End-to-end run of the 8-hop chain under one scheduler: returns the
/// trace digest (asserted identical across schedulers), the perf counters
/// and the serial wall time.
fn chain_sched_run(kind: SchedulerKind, duration: SimDuration) -> (u64, RunPerf, f64) {
    let cfg = SimConfig { seed: 11, scheduler: kind, ..SimConfig::default() };
    let clock = WallClock::start();
    let mut sim = Simulator::new(topology::chain(8), cfg);
    let (src, dst) = topology::chain_flow(8);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    sim.run_until(SimTime::ZERO + duration);
    let secs = clock.elapsed_secs();
    (sim.trace_hash(), sim.perf(), secs)
}

/// Runs the 8-hop chain, optionally taking a full simulator snapshot every
/// `every` of virtual time; returns the deterministic event digest, the
/// event count, and the number/total bytes of snapshots taken.
fn chain_snapshot_run(
    cfg: SimConfig,
    duration: SimDuration,
    every: Option<SimDuration>,
) -> (u64, u64, usize, usize) {
    let mut sim = Simulator::new(topology::chain(8), cfg);
    let (src, dst) = topology::chain_flow(8);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    let mut snapshots = 0usize;
    let mut bytes_total = 0usize;
    if let Some(step) = every {
        let mut at = SimTime::ZERO + step;
        while at < SimTime::ZERO + duration {
            sim.run_until(at);
            bytes_total += sim.snapshot().len();
            snapshots += 1;
            at += step;
        }
    }
    sim.run_until(SimTime::ZERO + duration);
    (sim.trace_hash(), sim.perf().events_processed, snapshots, bytes_total)
}

/// One config-built random-disc + random-waypoint run at `n` nodes with
/// the invariant checker installed; `n/100` (min 1) Muzha flows between
/// index-spread endpoints. Asserts the conservation ledger balances and no
/// invariant fires, then returns the perf counters and the run's wall time
/// (simulator construction and topology generation excluded).
fn topo_scale_run(n: u16, secs: u64) -> (RunPerf, f64) {
    let cfg = SimConfig {
        topology: TopologySpec::random_disc_dense(n, 250.0),
        mobility: MobilitySpec::DEFAULT_WAYPOINT,
        ..SimConfig::default()
    };
    let mut sim = Simulator::from_config(cfg);
    sim.install_checker(InvariantChecker::new());
    let count = usize::from(n);
    let flows = (count / 100).max(1);
    for k in 0..flows {
        let a = k * count / flows;
        let b = (a + count / 2) % count;
        sim.add_flow(FlowSpec::new(
            NodeId::new(a as u16),
            NodeId::new(b as u16),
            TcpVariant::Muzha,
        ));
    }
    let clock = WallClock::start();
    sim.run_until(SimTime::from_secs_f64(secs as f64));
    let wall = clock.elapsed_secs();
    let checker = sim.take_checker().expect("checker installed above");
    assert!(
        checker.violations().is_empty(),
        "topo_scale n={n}: invariant violations: {:?}",
        checker.violations()
    );
    let l = checker.ledger();
    assert_eq!(
        l.injected,
        l.delivered + l.dropped + l.fault_dropped + l.in_flight,
        "topo_scale n={n}: conservation ledger out of balance"
    );
    (sim.perf(), wall)
}

/// Mean nanoseconds per `Channel::set_position` on an `n`-node random-disc
/// placement under the given index, with mobility-tick-sized steps (±2 m —
/// what a 100 ms tick at top waypoint speed produces). Both index kinds see
/// the identical seeded move stream.
fn move_cost_ns(n: u16, index: IndexKind, moves: usize) -> f64 {
    let cfg = SimConfig::default();
    let positions = TopologySpec::random_disc_dense(n, 250.0).build(cfg.radio.tx_range_m, cfg.seed);
    let mut ch = Channel::with_index(positions, cfg.radio, index);
    let mut rng = SimRng::new(0x6d6f7665); // "move"
    let clock = WallClock::start();
    for _ in 0..moves {
        let node = NodeId::new(rng.below(u32::from(n)) as u16);
        let p = ch.position(node);
        let dx = (rng.unit_f64() - 0.5) * 4.0;
        let dy = (rng.unit_f64() - 0.5) * 4.0;
        ch.set_position(node, phy::Position::new(p.x + dx, p.y + dy));
    }
    clock.elapsed_secs() * 1e9 / moves as f64
}

/// One conservative-PDES scaling run: a city-blocks street grid under full
/// random-waypoint mobility with `flows` Muzha flows, executed by the
/// requested scheduler. Returns the trace digest (asserted identical across
/// shard counts — the speed-up claim is only meaningful because the event
/// streams are bit-identical), the perf counters, and the wall time.
fn pdes_scale_run(
    spec: TopologySpec,
    scheduler: SchedulerKind,
    shards: usize,
    secs: u64,
) -> (u64, RunPerf, f64) {
    let cfg = SimConfig {
        topology: spec,
        mobility: MobilitySpec::DEFAULT_WAYPOINT,
        scheduler,
        shards,
        ..SimConfig::default()
    };
    let mut sim = Simulator::from_config(cfg);
    let count = spec.node_count();
    let flows = (count / 100).max(1);
    for k in 0..flows {
        let a = k * count / flows;
        let b = (a + count / 2) % count;
        sim.add_flow(FlowSpec::new(
            NodeId::new(a as u16),
            NodeId::new(b as u16),
            TcpVariant::Muzha,
        ));
    }
    let clock = WallClock::start();
    sim.run_until(SimTime::from_secs_f64(secs as f64));
    let wall = clock.elapsed_secs();
    (sim.trace_hash(), sim.perf(), wall)
}

/// Extracts `"key": <number>` from hand-rolled JSON text (enough for the
/// baseline file this binary writes itself).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))?;
    rest[..end].parse().ok()
}

/// Like [`json_number`], but scoped to the first occurrence of the named
/// top-level block, so duplicated keys (`overhead_ratio` appears in both
/// overhead blocks) resolve to the right one.
fn json_number_in(text: &str, block: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{block}\""))?;
    json_number(&text[at..], key)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = parse_flag(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs number"));
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_sim.json".to_string());

    let (seeds, secs): (Vec<u64>, u64) =
        if quick { (vec![11, 23], 5) } else { (vec![11, 23, 37, 53], 15) };
    let scenarios = [
        Scenario {
            name: "chain8_muzha",
            seeds: seeds.clone(),
            duration: SimDuration::from_secs(secs),
            run: chain_run,
        },
        Scenario {
            name: "cross4_newreno_vs_muzha",
            seeds,
            duration: SimDuration::from_secs(secs),
            run: cross_run,
        },
    ];

    let effective = harness::effective_jobs(jobs);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut entries = Vec::new();
    for sc in &scenarios {
        eprintln!("benchmarking {} ({} seeds, {} s virtual)...", sc.name, sc.seeds.len(), secs);
        let configs: Vec<SimConfig> =
            sc.seeds.iter().map(|&seed| SimConfig { seed, ..SimConfig::default() }).collect();

        let serial_clock = WallClock::start();
        let serial: Vec<RunPerf> = run_batch(&configs, 1, |&cfg, _| (sc.run)(cfg, sc.duration));
        let serial_secs = serial_clock.elapsed_secs();

        // The thread-pool pass only measures something when there is real
        // parallelism to buy. With one effective worker it would re-run the
        // identical serial batch and report scheduling noise as a
        // "speedup", so skip the dispatch and report 1.0 honestly.
        let (parallel_secs, batch_speedup) = if effective > 1 {
            let parallel_clock = WallClock::start();
            let parallel: Vec<RunPerf> =
                run_batch(&configs, jobs, |&cfg, _| (sc.run)(cfg, sc.duration));
            let parallel_secs = parallel_clock.elapsed_secs();
            assert_eq!(serial, parallel, "{}: parallel run diverged from serial", sc.name);
            (parallel_secs, serial_secs / parallel_secs.max(1e-9))
        } else {
            eprintln!("  single effective worker ({host_cores} host cores): parallel pass skipped");
            (serial_secs, 1.0)
        };

        let mut total = RunPerf::default();
        for p in &serial {
            total.merge(p);
        }
        let events_per_sec = total.events_processed as f64 / serial_secs.max(1e-9);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"seeds\": {},\n",
                "      \"virtual_secs\": {},\n",
                "      \"events_processed\": {},\n",
                "      \"peak_event_queue\": {},\n",
                "      \"peak_ifq_depth\": {},\n",
                "      \"serial_wall_secs\": {:.6},\n",
                "      \"parallel_wall_secs\": {:.6},\n",
                "      \"parallel_jobs\": {},\n",
                "      \"host_cores\": {},\n",
                "      \"events_per_sec_serial\": {:.1},\n",
                "      \"batch_speedup\": {:.3}\n",
                "    }}"
            ),
            sc.name,
            sc.seeds.len(),
            secs,
            total.events_processed,
            total.peak_event_queue,
            total.peak_ifq_depth,
            serial_secs,
            parallel_secs,
            effective,
            host_cores,
            events_per_sec,
            batch_speedup,
        ));
    }

    // Trace-subsystem overhead guard: the same chain run with a full
    // in-memory trace log must reproduce the untraced event digest (pure
    // observer), and its wall-time cost is reported so the trajectory can
    // be watched across PRs. The headline `events_per_sec_serial` numbers
    // above always run untraced — tracing disabled costs only a skipped
    // branch per choke point.
    eprintln!("measuring trace overhead (chain8, 1 seed)...");
    let trace_duration = SimDuration::from_secs(secs);
    let trace_cfg = SimConfig { seed: 11, ..SimConfig::default() };
    let untraced_clock = WallClock::start();
    let (untraced_hash, _) = chain_hash_run(trace_cfg, trace_duration, false);
    let untraced_secs = untraced_clock.elapsed_secs();
    let traced_clock = WallClock::start();
    let (traced_hash, records_kept) = chain_hash_run(trace_cfg, trace_duration, true);
    let traced_secs = traced_clock.elapsed_secs();
    assert_eq!(untraced_hash, traced_hash, "tracing changed the event stream");

    let trace_overhead = format!(
        concat!(
            "  \"trace_overhead\": {{\n",
            "    \"scenario\": \"chain8_muzha\",\n",
            "    \"virtual_secs\": {},\n",
            "    \"records_kept\": {},\n",
            "    \"untraced_wall_secs\": {:.6},\n",
            "    \"traced_wall_secs\": {:.6},\n",
            "    \"overhead_ratio\": {:.3}\n",
            "  }}"
        ),
        secs,
        records_kept,
        untraced_secs,
        traced_secs,
        traced_secs / untraced_secs.max(1e-9),
    );

    // Snapshot-subsystem overhead guard: the same chain run with a full
    // simulator snapshot taken every virtual second must reproduce the
    // plain run's event digest and count (snapshotting is a pure
    // observation), and the amortised checkpoint cost per dispatched event
    // is reported so the trajectory can be watched across PRs.
    eprintln!("measuring snapshot overhead (chain8, 1 seed, 1 checkpoint/virtual sec)...");
    let snap_every = SimDuration::from_secs(1);
    let plain_clock = WallClock::start();
    let (plain_hash, plain_events, _, _) = chain_snapshot_run(trace_cfg, trace_duration, None);
    let plain_secs = plain_clock.elapsed_secs();
    let ck_clock = WallClock::start();
    let (ck_hash, ck_events, snapshots_taken, snapshot_bytes) =
        chain_snapshot_run(trace_cfg, trace_duration, Some(snap_every));
    let ck_secs = ck_clock.elapsed_secs();
    assert_eq!(plain_hash, ck_hash, "taking snapshots changed the event stream");
    assert_eq!(plain_events, ck_events, "taking snapshots changed the event count");

    let snapshot_overhead = format!(
        concat!(
            "  \"snapshot_overhead\": {{\n",
            "    \"scenario\": \"chain8_muzha\",\n",
            "    \"virtual_secs\": {},\n",
            "    \"snapshots_taken\": {},\n",
            "    \"snapshot_bytes_total\": {},\n",
            "    \"plain_wall_secs\": {:.6},\n",
            "    \"checkpointed_wall_secs\": {:.6},\n",
            "    \"overhead_ratio\": {:.3},\n",
            "    \"checkpoint_cost_ns_per_event\": {:.1}\n",
            "  }}"
        ),
        secs,
        snapshots_taken,
        snapshot_bytes,
        plain_secs,
        ck_secs,
        ck_secs / plain_secs.max(1e-9),
        (ck_secs - plain_secs).max(0.0) * 1e9 / ck_events.max(1) as f64,
    );

    // Scheduler comparison: hold-model microbenchmarks over both queue
    // implementations, then an end-to-end chain run per scheduler with the
    // trace digests asserted identical — the perf claim is only meaningful
    // because the event streams are bit-identical.
    eprintln!("benchmarking schedulers (hold model + chain8 end-to-end)...");
    let (hold_size, hold_ops) = if quick { (2_000, 200_000) } else { (10_000, 2_000_000) };
    let mut hold_entries = Vec::new();
    for dist in [HoldDist::Uniform, HoldDist::Bursty, HoldDist::FarFuture] {
        let calendar = hold_ops_per_sec(SchedulerKind::Calendar, dist, hold_size, hold_ops);
        let heap = hold_ops_per_sec(SchedulerKind::Heap, dist, hold_size, hold_ops);
        hold_entries.push(format!(
            concat!(
                "      {{\"dist\": \"{}\", \"queue_size\": {}, ",
                "\"ops_per_sec_calendar\": {:.1}, \"ops_per_sec_heap\": {:.1}, ",
                "\"calendar_speedup\": {:.3}}}"
            ),
            dist.name(),
            hold_size,
            calendar,
            heap,
            calendar / heap.max(1e-9),
        ));
    }
    let sched_duration = SimDuration::from_secs(secs);
    let (cal_hash, cal_perf, cal_secs) = chain_sched_run(SchedulerKind::Calendar, sched_duration);
    let (heap_hash, heap_perf, heap_secs) = chain_sched_run(SchedulerKind::Heap, sched_duration);
    assert_eq!(cal_hash, heap_hash, "schedulers must replay identical event streams");
    assert_eq!(cal_perf.events_processed, heap_perf.events_processed);
    let eps_calendar = cal_perf.events_processed as f64 / cal_secs.max(1e-9);
    let eps_heap = heap_perf.events_processed as f64 / heap_secs.max(1e-9);
    let scheduler_block = format!(
        concat!(
            "  \"scheduler\": {{\n",
            "    \"hold\": [\n{}\n    ],\n",
            "    \"end_to_end\": {{\n",
            "      \"scenario\": \"chain8_muzha\",\n",
            "      \"virtual_secs\": {},\n",
            "      \"trace_hash_match\": true,\n",
            "      \"events_per_sec_calendar\": {:.1},\n",
            "      \"events_per_sec_heap\": {:.1},\n",
            "      \"calendar_speedup\": {:.3},\n",
            "      \"peak_event_queue\": {},\n",
            "      \"timers_cancelled\": {},\n",
            "      \"timers_stale_popped\": {}\n",
            "    }}\n",
            "  }}"
        ),
        hold_entries.join(",\n"),
        secs,
        eps_calendar,
        eps_heap,
        eps_calendar / eps_heap.max(1e-9),
        cal_perf.peak_event_queue,
        cal_perf.timers_cancelled,
        cal_perf.timers_stale_popped,
    );
    if eps_calendar < eps_heap {
        println!(
            "::warning title=scheduler perf::calendar queue slower than heap \
             ({eps_calendar:.0} vs {eps_heap:.0} events/sec)"
        );
    }

    // Topology-scaling curve: config-built random-disc placements under
    // full random-waypoint mobility, with the invariant checker riding
    // along (the ledger must balance at every size), plus a per-move
    // microbenchmark of `Channel::set_position` under both PHY indexes —
    // the cost the spatial grid exists to flatten.
    let (topo_counts, topo_secs): (Vec<u16>, u64) =
        if quick { (vec![25, 100], 5) } else { (vec![25, 100, 400, 1000], 10) };
    let moves = if quick { 20_000 } else { 100_000 };
    let mut topo_lines = vec![format!(
        "    \"virtual_secs\": {topo_secs},\n    \"mobility\": \"{}\",\n    \"moves_timed\": {moves}",
        MobilitySpec::DEFAULT_WAYPOINT,
    )];
    for &n in &topo_counts {
        eprintln!("benchmarking topo_scale n={n} (random-disc + waypoint, {topo_secs} s)...");
        let (perf, wall) = topo_scale_run(n, topo_secs);
        let grid_ns = move_cost_ns(n, IndexKind::Grid, moves);
        let brute_ns = move_cost_ns(n, IndexKind::BruteForce, moves);
        topo_lines.push(format!(
            concat!(
                "    \"events_processed_{n}\": {},\n",
                "    \"events_per_sec_{n}\": {:.1},\n",
                "    \"position_updates_{n}\": {},\n",
                "    \"link_churn_{n}\": {},\n",
                "    \"move_cost_ns_grid_{n}\": {:.1},\n",
                "    \"move_cost_ns_brute_{n}\": {:.1}"
            ),
            perf.events_processed,
            perf.events_processed as f64 / wall.max(1e-9),
            perf.position_updates,
            perf.link_churn,
            grid_ns,
            brute_ns,
            n = n,
        ));
    }
    let topo_block = format!("  \"topo_scale\": {{\n{}\n  }}", topo_lines.join(",\n"));

    // Conservative-PDES scaling: a city-blocks street grid under full
    // waypoint mobility, executed serially (calendar queue) and by the
    // sharded scheduler at 1/2/4 shards. Pop order is identical by
    // construction, so every digest must match the serial one; the
    // events/sec trajectory per shard count is the number CI watches. On a
    // single-core host the sharded driver plans inline (no threads), so
    // these numbers then measure pure sharding overhead, not speed-up —
    // `host_cores` is recorded so the reader can tell which.
    let (pdes_spec, pdes_secs) = if quick {
        // 19×19 blocks → 20×20 = 400 intersections.
        (TopologySpec::CityBlocks { blocks_x: 19, blocks_y: 19, extra: 0 }, 5)
    } else {
        // 30×30 blocks → 31×31 = 961 intersections + 39 mid-street = 1000.
        (TopologySpec::CityBlocks { blocks_x: 30, blocks_y: 30, extra: 39 }, 10)
    };
    let pdes_nodes = pdes_spec.node_count();
    eprintln!("benchmarking pdes_scale (city n={pdes_nodes}, {pdes_secs} s, shards 1/2/4)...");
    let (pdes_hash, pdes_perf, pdes_serial_secs) =
        pdes_scale_run(pdes_spec, SchedulerKind::Calendar, 1, pdes_secs);
    let mut pdes_lines = vec![format!(
        concat!(
            "    \"scenario\": \"city_waypoint\",\n",
            "    \"nodes\": {},\n",
            "    \"virtual_secs\": {},\n",
            "    \"host_cores\": {},\n",
            "    \"events_processed\": {},\n",
            "    \"events_per_sec_serial\": {:.1}"
        ),
        pdes_nodes,
        pdes_secs,
        host_cores,
        pdes_perf.events_processed,
        pdes_perf.events_processed as f64 / pdes_serial_secs.max(1e-9),
    )];
    for nshards in [1usize, 2, 4] {
        let (hash, perf, wall) =
            pdes_scale_run(pdes_spec, SchedulerKind::Sharded, nshards, pdes_secs);
        assert_eq!(
            hash, pdes_hash,
            "pdes_scale: sharded run ({nshards} shards) diverged from serial"
        );
        assert_eq!(perf, pdes_perf, "pdes_scale: merged counters diverged at {nshards} shards");
        pdes_lines.push(format!(
            concat!(
                "    \"events_per_sec_shards_{n}\": {:.1},\n",
                "    \"sharded_speedup_{n}\": {:.3}"
            ),
            perf.events_processed as f64 / wall.max(1e-9),
            pdes_serial_secs / wall.max(1e-9),
            n = nshards,
        ));
    }
    let pdes_block = format!("  \"pdes_scale\": {{\n{}\n  }}", pdes_lines.join(",\n"));

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"quick\": {},\n  \"scenarios\": [\n{}\n  ],\n{},\n{},\n{},\n{},\n{}\n}}\n",
        quick,
        entries.join(",\n"),
        trace_overhead,
        snapshot_overhead,
        scheduler_block,
        topo_block,
        pdes_block,
    );

    // Soft regression gate against the committed baseline: every watched
    // metric that moves past its threshold prints a CI annotation naming
    // the block that regressed, but does not fail the build — wall-clock
    // numbers on shared runners are advisory. Throughputs may drop at most
    // 20%; overhead ratios may grow at most 25%.
    let baseline_path =
        parse_flag(&args, "--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    if let Ok(baseline) = std::fs::read_to_string(&baseline_path) {
        let watched = [
            ("scheduler", "events_per_sec_calendar", true),
            ("scheduler", "events_per_sec_heap", true),
            ("trace_overhead", "overhead_ratio", false),
            ("snapshot_overhead", "overhead_ratio", false),
            ("topo_scale", "events_per_sec_25", true),
            ("topo_scale", "events_per_sec_100", true),
            ("topo_scale", "events_per_sec_1000", true),
            ("topo_scale", "move_cost_ns_grid_100", false),
            ("topo_scale", "move_cost_ns_grid_1000", false),
            ("pdes_scale", "events_per_sec_serial", true),
            ("pdes_scale", "events_per_sec_shards_1", true),
            ("pdes_scale", "events_per_sec_shards_2", true),
            ("pdes_scale", "events_per_sec_shards_4", true),
        ];
        // `pdes_scale` reuses one set of key names across the quick (400
        // node) and full (1000 node) city, so only compare runs of the
        // same size — a 1000-node events/s figure against a 400-node
        // baseline is a workload change, not a regression.
        let pdes_comparable = json_number_in(&baseline, "pdes_scale", "nodes")
            == json_number_in(&json, "pdes_scale", "nodes");
        for (block, key, higher_is_better) in watched {
            if block == "pdes_scale" && !pdes_comparable {
                eprintln!(
                    "baseline check skipped: {block}.{key} measured on a different city size \
                     than {baseline_path}"
                );
                continue;
            }
            let (Some(base), Some(now)) =
                (json_number_in(&baseline, block, key), json_number_in(&json, block, key))
            else {
                eprintln!("baseline check skipped: {block}.{key} missing from {baseline_path}");
                continue;
            };
            let regressed = if higher_is_better { now < 0.8 * base } else { now > 1.25 * base };
            if regressed {
                println!(
                    "::warning title=bench regression::{block}.{key} is {now:.3} vs the \
                     committed baseline {base:.3} ({baseline_path})"
                );
            } else {
                eprintln!("baseline check ok: {block}.{key} {now:.3} vs baseline {base:.3}");
            }
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{json}");
    println!("wrote {out}");
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}
