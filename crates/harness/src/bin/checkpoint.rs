//! Snapshot/resume CLI over the corpus-convention simulation (4-hop chain,
//! one NewReno flow, the script's seed and duration).
//!
//! ```sh
//! # One checkpoint at virtual time T:
//! cargo run --release -p harness --bin checkpoint -- snapshot \
//!     --script PATH.scn --at SECS --out run.snap
//!
//! # Periodic checkpoints every N virtual seconds until the duration:
//! cargo run --release -p harness --bin checkpoint -- snapshot \
//!     --script PATH.scn --checkpoint-every SECS --out-dir DIR
//!
//! # Resume a checkpoint and run to the script's duration (or --until):
//! cargo run --release -p harness --bin checkpoint -- resume \
//!     --script PATH.scn --from run.snap [--until SECS]
//! ```
//!
//! A resumed run is bit-identical to the straight run — same `trace_hash`,
//! same perf counters (the twin test `tests/snapshot_twin.rs` pins this
//! over the whole corpus). Both subcommands print the final trace hash so
//! straight and resumed legs can be compared from the shell. Exit codes:
//! 0 on success, 1 on usage errors, 2 when a snapshot fails to restore.

use std::fs;

use faultline::ScenarioScript;
use harness::mc::{corpus_duration, corpus_sim};
use sim_core::{SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        usage("missing subcommand");
    };
    let script_path =
        parse_flag(&args, "--script").unwrap_or_else(|| usage("--script is required"));
    let text = fs::read_to_string(&script_path)
        .unwrap_or_else(|e| fail(&format!("read {script_path}: {e}")));
    let script =
        ScenarioScript::parse(&text).unwrap_or_else(|e| fail(&format!("parse {script_path}: {e}")));
    let duration = corpus_duration(&script);

    match mode {
        "snapshot" => snapshot(&script, duration, &args),
        "resume" => resume(&script, duration, &args),
        other => usage(&format!("unknown subcommand {other:?} (want snapshot or resume)")),
    }
}

/// `snapshot`: run to `--at` and write one snapshot, or sweep
/// `--checkpoint-every` writing one file per checkpoint instant.
fn snapshot(script: &ScenarioScript, duration: SimDuration, args: &[String]) {
    let mut sim = corpus_sim(script);
    if let Some(every) = parse_flag(args, "--checkpoint-every") {
        let every: f64 =
            every.parse().unwrap_or_else(|_| usage("--checkpoint-every wants seconds"));
        if every.is_nan() || every <= 0.0 {
            usage("--checkpoint-every must be positive");
        }
        let out_dir = parse_flag(args, "--out-dir")
            .unwrap_or_else(|| usage("--out-dir is required with --checkpoint-every"));
        fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(&format!("mkdir {out_dir}: {e}")));
        let step = SimDuration::from_secs_f64(every);
        let mut at = SimTime::ZERO + step;
        let mut written = 0usize;
        while at < SimTime::ZERO + duration {
            sim.run_until(at);
            let path = format!("{out_dir}/{}-t{:.3}.snap", script.name, at.as_secs_f64());
            fs::write(&path, sim.snapshot())
                .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            println!(
                "checkpoint {path}: t={} events={} hash={:#018x}",
                at,
                sim.perf().events_processed,
                sim.trace_hash()
            );
            written += 1;
            at += step;
        }
        sim.run_until(SimTime::ZERO + duration);
        println!(
            "{} checkpoint(s) in {out_dir}; final t={} hash={:#018x}",
            written,
            sim.now(),
            sim.trace_hash()
        );
    } else {
        let at = parse_flag(args, "--at")
            .unwrap_or_else(|| usage("snapshot wants --at SECS or --checkpoint-every SECS"));
        let at: f64 = at.parse().unwrap_or_else(|_| usage("--at wants seconds"));
        let out = parse_flag(args, "--out").unwrap_or_else(|| usage("--out PATH is required"));
        sim.run_until(SimTime::from_secs_f64(at));
        let bytes = sim.snapshot();
        fs::write(&out, &bytes).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        println!(
            "snapshot {out}: {} bytes, t={} events={} hash={:#018x}",
            bytes.len(),
            sim.now(),
            sim.perf().events_processed,
            sim.trace_hash()
        );
    }
}

/// `resume`: restore `--from` into a freshly built convention simulator and
/// run to the script's duration (or `--until`).
fn resume(script: &ScenarioScript, duration: SimDuration, args: &[String]) {
    let from = parse_flag(args, "--from").unwrap_or_else(|| usage("resume wants --from PATH"));
    let bytes = fs::read(&from).unwrap_or_else(|e| fail(&format!("read {from}: {e}")));
    let end = match parse_flag(args, "--until") {
        Some(v) => {
            SimTime::from_secs_f64(v.parse().unwrap_or_else(|_| usage("--until wants seconds")))
        }
        None => SimTime::ZERO + duration,
    };
    let mut sim = corpus_sim(script);
    if let Err(e) = sim.restore(&bytes) {
        eprintln!("cannot resume {from}: {e}");
        std::process::exit(2);
    }
    let resumed_from = sim.now();
    let baseline = sim.perf().events_processed;
    sim.run_until(end);
    let perf = sim.perf();
    println!(
        "resumed {from} at t={resumed_from}, ran to t={}: events={} (+{} after resume) hash={:#018x}",
        sim.now(),
        perf.events_processed,
        perf.events_processed - baseline,
        sim.trace_hash()
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("checkpoint: {msg}");
    eprintln!(
        "usage: checkpoint snapshot --script PATH.scn (--at SECS --out PATH | --checkpoint-every SECS --out-dir DIR)"
    );
    eprintln!("       checkpoint resume --script PATH.scn --from PATH [--until SECS]");
    std::process::exit(1);
}

fn fail(msg: &str) -> ! {
    eprintln!("checkpoint: {msg}");
    std::process::exit(1);
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}
