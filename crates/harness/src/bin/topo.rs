//! Topology/mobility scenario runner: builds a simulator entirely from a
//! `--topology` / `--mobility` description, drives TCP flows across it with
//! the runtime invariant checker installed, and reports the trace hash,
//! the packet-conservation ledger and the wall-clock event rate.
//!
//! ```sh
//! cargo run --release -p harness --bin topo -- \
//!     [--topology SPEC] [--mobility SPEC] [--phy-index grid|brute-force] \
//!     [--secs S] [--seed S] [--flows N] [--variant NAME] [--twin] [--shards N]
//! ```
//!
//! Topology specs: `chain:8`, `grid:4x5`, `random-disc:100` (dense square
//! area), `random-disc:100@2000x2000`, `city-blocks:4x4@16`. Mobility
//! specs: `static`, `waypoint` (1–20 m/s, no pause), `waypoint:1-20@30`
//! (30 s pause). Defaults: `random-disc:40`, `waypoint`, grid index, one
//! Muzha flow, 30 virtual seconds.
//!
//! `--twin` runs the same scenario a second time on the brute-force PHY
//! index and fails loudly unless the trace hashes are bit-identical — the
//! end-to-end form of the grid/brute equivalence the PHY proptests pin.
//!
//! `--shards N` (N > 1) switches to the conservative sharded scheduler:
//! nodes are partitioned into N spatial shards and mobility work is planned
//! per shard inside propagation-delay lookahead windows. The trace hash is
//! identical to a serial run by construction — compare against a run
//! without the flag to check.

use faultline::InvariantChecker;
use harness::tracecap;
use harness::WallClock;
use netstack::{FlowSpec, IndexKind, MobilitySpec, SimConfig, Simulator, TcpVariant, TopologySpec};
use sim_core::SimTime;
use wire::NodeId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topology = parse_flag(&args, "--topology")
        .map(|v| TopologySpec::parse(&v).unwrap_or_else(|e| panic!("--topology: {e}")))
        .unwrap_or_else(|| TopologySpec::random_disc_dense(40, 250.0));
    let mobility = parse_flag(&args, "--mobility")
        .map(|v| MobilitySpec::parse(&v).unwrap_or_else(|e| panic!("--mobility: {e}")))
        .unwrap_or(MobilitySpec::DEFAULT_WAYPOINT);
    let index = parse_flag(&args, "--phy-index")
        .map(|v| IndexKind::parse(&v).unwrap_or_else(|e| panic!("--phy-index: {e}")))
        .unwrap_or_default();
    let secs: u64 = parse_flag(&args, "--secs").map_or(30, |v| v.parse().expect("--secs number"));
    let seed: Option<u64> = parse_flag(&args, "--seed").map(|v| v.parse().expect("--seed number"));
    let flows: usize =
        parse_flag(&args, "--flows").map_or(1, |v| v.parse().expect("--flows number"));
    let variant = parse_flag(&args, "--variant").map_or(TcpVariant::Muzha, |v| {
        tracecap::variant_by_name(&v)
            .unwrap_or_else(|| panic!("unknown variant {v:?}; known: {:?}", TcpVariant::ALL))
    });
    let twin = args.iter().any(|a| a == "--twin");
    let shards: usize =
        parse_flag(&args, "--shards").map_or(1, |v| v.parse().expect("--shards number"));

    let mut cfg = SimConfig { topology, mobility, phy_index: index, ..SimConfig::default() };
    if shards > 1 {
        cfg.scheduler = sim_core::SchedulerKind::Sharded;
        cfg.shards = shards;
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }

    println!(
        "topology {topology} ({} nodes), mobility {mobility}, index {index}, \
         {flows} {} flow(s), {secs} s virtual, seed {:#x}{}",
        topology.node_count(),
        variant.name(),
        cfg.seed,
        if shards > 1 { format!(", sharded scheduler ({shards} shards)") } else { String::new() },
    );

    let outcome = run(cfg, variant, flows, secs);
    println!(
        "trace hash {:#018x}  |  {} events in {:.2} s wall = {:.0} events/s",
        outcome.hash,
        outcome.events,
        outcome.wall_s,
        outcome.events as f64 / outcome.wall_s.max(1e-9),
    );
    println!(
        "mobility: {} position updates, {} neighbor-row churn",
        outcome.position_updates, outcome.link_churn
    );
    println!(
        "ledger: injected {} = delivered {} + dropped {} + fault {} + in-flight {}",
        outcome.ledger.injected,
        outcome.ledger.delivered,
        outcome.ledger.dropped,
        outcome.ledger.fault_dropped,
        outcome.ledger.in_flight,
    );
    assert_eq!(
        outcome.ledger.injected,
        outcome.ledger.delivered
            + outcome.ledger.dropped
            + outcome.ledger.fault_dropped
            + outcome.ledger.in_flight,
        "conservation ledger out of balance"
    );
    if outcome.violations.is_empty() {
        println!("invariants: clean ({} events checked)", outcome.checked);
    } else {
        for v in &outcome.violations {
            println!("VIOLATION: {v}");
        }
        panic!("{} invariant violation(s)", outcome.violations.len());
    }

    if twin {
        let mut twin_cfg = cfg;
        twin_cfg.phy_index = match index {
            IndexKind::Grid => IndexKind::BruteForce,
            IndexKind::BruteForce => IndexKind::Grid,
        };
        let other = run(twin_cfg, variant, flows, secs);
        assert_eq!(
            outcome.hash, other.hash,
            "PHY index kinds diverged: {index} vs {} — the spatial grid must be \
             behaviourally invisible",
            twin_cfg.phy_index,
        );
        println!(
            "twin ({}): trace hash identical, {:.0} events/s",
            twin_cfg.phy_index,
            other.events as f64 / other.wall_s.max(1e-9),
        );
    }
}

struct Outcome {
    hash: u64,
    events: u64,
    wall_s: f64,
    position_updates: u64,
    link_churn: u64,
    ledger: faultline::LedgerSummary,
    violations: Vec<faultline::Violation>,
    checked: u64,
}

fn run(cfg: SimConfig, variant: TcpVariant, flows: usize, secs: u64) -> Outcome {
    let mut sim = Simulator::from_config(cfg);
    sim.install_checker(InvariantChecker::new());
    add_spread_flows(&mut sim, variant, flows);
    let clock = WallClock::start();
    sim.run_until(SimTime::from_secs_f64(secs as f64));
    let wall_s = clock.elapsed_secs();
    let perf = sim.perf();
    let checker = sim.take_checker().expect("checker installed above");
    Outcome {
        hash: sim.trace_hash(),
        events: perf.events_processed,
        wall_s,
        position_updates: perf.position_updates,
        link_churn: perf.link_churn,
        ledger: checker.ledger(),
        violations: checker.violations().to_vec(),
        checked: checker.events_seen(),
    }
}

/// Adds `flows` flows: the first between the most-separated pair, the rest
/// between deterministically spread endpoints.
fn add_spread_flows(sim: &mut Simulator, variant: TcpVariant, flows: usize) {
    let n = sim.node_count();
    assert!(n >= 2, "a flow needs two nodes");
    let (src, dst) = tracecap::farthest_pair(sim);
    sim.add_flow(FlowSpec::new(src, dst, variant));
    for k in 1..flows {
        // Spread the remaining endpoints around the node index space;
        // nudge apart if a pair collides.
        let a = (k * n / flows) % n;
        let mut b = (a + n / 2) % n;
        if a == b {
            b = (b + 1) % n;
        }
        sim.add_flow(FlowSpec::new(NodeId::new(a as u16), NodeId::new(b as u16), variant));
    }
}

/// Returns the value of `--flag V` or `--flag=V`, if present.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
        if a == flag {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("{flag} expects a value")).clone(),
            );
        }
    }
    None
}
