//! Plain-text rendering of result tables and series.

/// Renders a table with a header row, padding every column to its widest
/// cell.
///
/// # Example
///
/// ```
/// use harness::render_table;
/// let s = render_table(
///     &["hops", "kbps"],
///     &[vec!["4".into(), "277.2".into()], vec!["8".into(), "210.1".into()]],
/// );
/// assert!(s.contains("hops"));
/// assert!(s.lines().count() >= 4);
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a `(x, y)` series as aligned two-column text, prefixed with a
/// series name — the textual equivalent of one curve in a paper figure.
pub fn render_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>10.3} {y:>12.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_format() {
        let s = render_series("Muzha", &[(0.0, 1.0), (1.0, 2.5)]);
        assert!(s.starts_with("# Muzha\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
