//! Shared capture plumbing for the trace sinks.
//!
//! Runs a scenario with a [`TraceLog`] installed and renders the captured
//! entries in one of the supported formats (ns-2 trace lines, a pcap
//! capture, or structured CSV). Everything here returns in-memory strings
//! or byte vectors — file I/O stays in the binaries, on the wall-clock
//! side of the determinism boundary.

use std::fmt::Write as _;

use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::{SimDuration, SimTime};
use tracelog::{ns2, pcap, TraceEntry, TraceFilter, TraceLog};
use wire::{FlowId, NodeId};

/// Output format of a rendered capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// ns-2-style wireless trace lines (see [`tracelog::ns2`]).
    Ns2,
    /// A libpcap capture with `DLT_USER0` records (see [`tracelog::pcap`]).
    Pcap,
    /// Structured CSV: one row per record, common columns only.
    Csv,
}

impl TraceFormat {
    /// Parses a format name as given on a command line.
    pub fn parse(name: &str) -> Option<TraceFormat> {
        match name {
            "ns2" => Some(TraceFormat::Ns2),
            "pcap" => Some(TraceFormat::Pcap),
            "csv" => Some(TraceFormat::Csv),
            _ => None,
        }
    }

    /// Conventional file extension for the format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Ns2 => "tr",
            TraceFormat::Pcap => "pcap",
            TraceFormat::Csv => "csv",
        }
    }

    /// Whether the rendered bytes are binary (unsafe to print to a tty).
    pub fn is_binary(self) -> bool {
        matches!(self, TraceFormat::Pcap)
    }
}

/// Looks a [`TcpVariant`] up by its display name, case-insensitively.
pub fn variant_by_name(name: &str) -> Option<TcpVariant> {
    TcpVariant::ALL.into_iter().find(|v| v.name().eq_ignore_ascii_case(name))
}

/// Runs a single-flow `hops`-hop chain with a trace log installed and
/// returns the captured log together with the flow id.
pub fn capture_chain(
    hops: usize,
    variant: TcpVariant,
    duration: SimDuration,
    cfg: SimConfig,
    filter: TraceFilter,
) -> (TraceLog, FlowId) {
    let mut sim = Simulator::new(topology::chain(hops), cfg);
    let (src, dst) = topology::chain_flow(hops);
    let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
    sim.install_trace_log(TraceLog::with_filter(filter));
    sim.run_until(SimTime::ZERO + duration);
    let log = sim.take_trace_log().expect("log installed above");
    (log, flow)
}

/// The pair of nodes with the greatest initial separation (first such pair
/// in row-major scan order — deterministic). A natural flow for arbitrary
/// generated topologies: the longest line the routing layer must sustain.
pub fn farthest_pair(sim: &Simulator) -> (NodeId, NodeId) {
    let n = sim.node_count();
    assert!(n >= 2, "a flow needs two nodes");
    let (mut best, mut best_sq) = ((NodeId::new(0), NodeId::new(1)), -1.0);
    for i in 0..n {
        let pi = sim.position(NodeId::new(i as u16));
        for j in (i + 1)..n {
            let d = pi.distance_sq_to(sim.position(NodeId::new(j as u16)));
            if d > best_sq {
                best_sq = d;
                best = (NodeId::new(i as u16), NodeId::new(j as u16));
            }
        }
    }
    best
}

/// Runs whatever topology and mobility model `cfg` describes (see
/// [`netstack::TopologySpec`] / [`netstack::MobilitySpec`]) with a trace
/// log installed, driving one flow between the two most-separated nodes,
/// and returns the captured log with the flow id.
pub fn capture_topology(
    variant: TcpVariant,
    duration: SimDuration,
    cfg: SimConfig,
    filter: TraceFilter,
) -> (TraceLog, FlowId) {
    let mut sim = Simulator::from_config(cfg);
    let (src, dst) = farthest_pair(&sim);
    let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
    sim.install_trace_log(TraceLog::with_filter(filter));
    sim.run_until(SimTime::ZERO + duration);
    let log = sim.take_trace_log().expect("log installed above");
    (log, flow)
}

/// Renders entries as CSV with the common per-record columns:
/// `time_s,op,node,layer,uid,flow`. Uids and flows absent from a record
/// render as `-`; no field ever needs quoting.
pub fn csv<'a>(entries: impl IntoIterator<Item = &'a TraceEntry>) -> String {
    let mut out = String::from("time_s,op,node,layer,uid,flow\n");
    for entry in entries {
        let rec = &entry.record;
        let nanos = entry.at.as_nanos();
        let _ = write!(
            out,
            "{}.{:09},{},{},{},",
            nanos / 1_000_000_000,
            nanos % 1_000_000_000,
            rec.direction().ns2_op(),
            rec.node(),
            rec.layer().ns2_tag(),
        );
        match rec.uid() {
            Some(uid) => {
                let _ = write!(out, "{uid},");
            }
            None => out.push_str("-,"),
        }
        match rec.flow() {
            Some(flow) => {
                let _ = writeln!(out, "{flow}");
            }
            None => out.push_str("-\n"),
        }
    }
    out
}

/// Renders entries in the requested format. `Ns2` and `Csv` are UTF-8
/// text; `Pcap` is binary.
pub fn render(entries: &[TraceEntry], format: TraceFormat) -> Vec<u8> {
    match format {
        TraceFormat::Ns2 => ns2::render(entries.iter()).into_bytes(),
        TraceFormat::Pcap => pcap::write(entries.iter()),
        TraceFormat::Csv => csv(entries.iter()).into_bytes(),
    }
}

/// Keeps only the final `last` entries when a limit is given.
pub fn tail(mut entries: Vec<TraceEntry>, last: Option<usize>) -> Vec<TraceEntry> {
    if let Some(n) = last {
        if entries.len() > n {
            entries.drain(..entries.len() - n);
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelog::Layer;

    fn short_capture() -> Vec<TraceEntry> {
        let (log, _) = capture_chain(
            2,
            TcpVariant::NewReno,
            SimDuration::from_secs(1),
            SimConfig::default(),
            TraceFilter::all(),
        );
        log.iter().copied().collect()
    }

    #[test]
    fn capture_reaches_every_layer() {
        let entries = short_capture();
        for layer in [Layer::Phy, Layer::Mac, Layer::Rtr, Layer::Ifq, Layer::Agt] {
            assert!(
                entries.iter().any(|e| e.record.layer() == layer),
                "no {layer:?} records in a 1 s chain run"
            );
        }
    }

    #[test]
    fn csv_is_rectangular_and_unquoted() {
        let entries = short_capture();
        let text = csv(entries.iter());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time_s,op,node,layer,uid,flow"));
        for line in lines {
            assert_eq!(line.split(',').count(), 6, "bad row: {line}");
            assert!(!line.contains('"'));
        }
        assert_eq!(text.lines().count(), entries.len() + 1);
    }

    #[test]
    fn pcap_render_self_parses() {
        let entries = short_capture();
        let bytes = render(&entries, TraceFormat::Pcap);
        let parsed = pcap::parse(&bytes).expect("own capture parses");
        assert_eq!(parsed.packets.len(), entries.len());
        assert_eq!(parsed.link_type, pcap::DLT_USER0);
    }

    #[test]
    fn tail_keeps_the_last_n() {
        let entries = short_capture();
        assert!(entries.len() > 10);
        let kept = tail(entries.clone(), Some(10));
        assert_eq!(kept.len(), 10);
        assert_eq!(kept.last(), entries.last());
        assert_eq!(tail(entries.clone(), None).len(), entries.len());
        assert_eq!(tail(entries.clone(), Some(usize::MAX)).len(), entries.len());
    }

    #[test]
    fn format_parsing() {
        assert_eq!(TraceFormat::parse("ns2"), Some(TraceFormat::Ns2));
        assert_eq!(TraceFormat::parse("pcap"), Some(TraceFormat::Pcap));
        assert_eq!(TraceFormat::parse("csv"), Some(TraceFormat::Csv));
        assert_eq!(TraceFormat::parse("json"), None);
        assert!(TraceFormat::Pcap.is_binary() && !TraceFormat::Ns2.is_binary());
        assert_eq!(variant_by_name("muzha"), Some(TcpVariant::Muzha));
        assert_eq!(variant_by_name("newreno"), Some(TcpVariant::NewReno));
        assert_eq!(variant_by_name("bogus"), None);
    }
}
