//! One module per simulation in the paper's Chapter 5.

mod chain_sweep;
mod coexist;
mod cwnd;
mod dynamics;

pub use chain_sweep::{throughput_vs_hops, ChainSweep, SweepMetric, SweepPoint};
pub use coexist::{coexistence, CoexistKind, CoexistResult, CoexistRun};
pub use cwnd::{cwnd_traces, cwnd_traces_batch, CwndTrace};
pub use dynamics::{throughput_dynamics, throughput_dynamics_batch, DynamicsResult};
