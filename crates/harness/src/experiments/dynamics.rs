//! Simulation 3B: throughput dynamics of three staggered flows
//! (Figs. 5.19–5.22).
//!
//! Three FTP flows of the *same* variant share a 4-hop chain, entering at
//! 0 s, 10 s and 20 s. The paper plots each flow's windowed throughput over
//! time and argues Muzha's flows converge to a fair share quickly and
//! smoothly while the other variants oscillate.

use netstack::{topology, FlowReport, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::stats::jain_fairness_index;
use sim_core::{SimDuration, SimTime};

use crate::render_series;

/// The windowed throughput series of the three flows.
#[derive(Clone, Debug)]
pub struct DynamicsResult {
    /// The variant all three flows use.
    pub variant: TcpVariant,
    /// Width of the throughput averaging window.
    pub window: SimDuration,
    /// Per-flow series of `(time s, kbit/s over the preceding window)`.
    pub series: Vec<Vec<(f64, f64)>>,
    /// Flow start times.
    pub starts: Vec<SimTime>,
    /// Full-run reports (for totals / retransmissions).
    pub reports: Vec<FlowReport>,
}

impl DynamicsResult {
    /// Jain fairness over the three flows' windowed throughputs in the
    /// final `tail` of the run (all three active).
    pub fn tail_fairness(&self, tail: usize) -> f64 {
        let shares: Vec<f64> = self
            .series
            .iter()
            .map(|s| {
                let n = s.len();
                let from = n.saturating_sub(tail);
                let w = &s[from..];
                if w.is_empty() {
                    0.0
                } else {
                    w.iter().map(|&(_, y)| y).sum::<f64>() / w.len() as f64
                }
            })
            .collect();
        jain_fairness_index(&shares)
    }

    /// Renders the three curves as text series (the figure's data).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&render_series(
                &format!("{} flow {} (start {})", self.variant.name(), i + 1, self.starts[i]),
                s,
            ));
        }
        out
    }
}

/// Runs Simulation 3B for several variants at once, one worker thread per
/// run (capped at `jobs`; 0 = auto, 1 = serial). Returns results in
/// `variants` order, identical at any worker count.
pub fn throughput_dynamics_batch(
    variants: &[TcpVariant],
    duration: SimDuration,
    window: SimDuration,
    cfg: SimConfig,
    jobs: usize,
) -> Vec<DynamicsResult> {
    crate::run_batch(variants, jobs, |&variant, _| {
        throughput_dynamics(variant, duration, window, cfg)
    })
}

/// Runs Simulation 3B for one variant.
pub fn throughput_dynamics(
    variant: TcpVariant,
    duration: SimDuration,
    window: SimDuration,
    cfg: SimConfig,
) -> DynamicsResult {
    const HOPS: usize = 4;
    let starts = [
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(10),
        SimTime::ZERO + SimDuration::from_secs(20),
    ];
    let mut sim = Simulator::new(topology::chain(HOPS), cfg);
    let (src, dst) = topology::chain_flow(HOPS);
    let flows: Vec<_> = starts
        .iter()
        .map(|&start| sim.add_flow(FlowSpec::new(src, dst, variant).starting_at(start)))
        .collect();
    let end = SimTime::ZERO + duration;
    sim.run_until(end);
    let reports: Vec<FlowReport> = flows.iter().map(|&f| sim.flow_report(f)).collect();
    let payload_bits = f64::from(wire::TCP_PAYLOAD_BYTES) * 8.0;
    let series = reports
        .iter()
        .map(|r| {
            let mut s = Vec::new();
            let mut t = SimTime::ZERO + window;
            while t <= end {
                let segs = r.delivered_in_window(t - window, t);
                let kbps = segs as f64 * payload_bits / window.as_secs_f64() / 1_000.0;
                s.push((t.as_secs_f64(), kbps));
                t += window;
            }
            s
        })
        .collect();
    DynamicsResult { variant, window, series, starts: starts.to_vec(), reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_flows_staggered() {
        let result = throughput_dynamics(
            TcpVariant::Muzha,
            SimDuration::from_secs(12),
            SimDuration::from_secs(1),
            SimConfig::default(),
        );
        assert_eq!(result.series.len(), 3);
        // Flow 1 has delivered something before flow 2 starts.
        let early: f64 = result.series[0].iter().filter(|&&(t, _)| t <= 9.0).map(|&(_, y)| y).sum();
        assert!(early > 0.0, "first flow idle before 9 s");
        // Flow 3 (starts at 20 s) has delivered nothing in a 12 s run.
        let f3: f64 = result.series[2].iter().map(|&(_, y)| y).sum();
        assert_eq!(f3, 0.0);
        // Rendering produces three named series.
        let text = result.render();
        assert_eq!(text.matches("# Muzha flow").count(), 3);
        let f = result.tail_fairness(5);
        assert!(f > 0.0 && f <= 1.0);
    }
}
