//! Simulation 2: throughput and retransmissions vs. number of hops
//! (Figs. 5.8–5.13).
//!
//! A single FTP flow over an h-hop chain, 30 s, no background traffic,
//! swept over h and the advertised window (`window_` ∈ {4, 8, 32}).

use netstack::{topology, FlowSpec, Simulator, TcpVariant};
use sim_core::SimTime;

use crate::{average, render_table, run_matrix, ExperimentConfig, Mean};

/// One measured point of the sweep (one bar in Figs. 5.8–5.13).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Chain length in hops.
    pub hops: usize,
    /// Advertised window in segments.
    pub window: u32,
    /// Sender variant.
    pub variant: TcpVariant,
    /// Goodput in kbit/s, averaged over seeds.
    pub throughput_kbps: Mean,
    /// Retransmitted segments per run, averaged over seeds.
    pub retransmissions: Mean,
    /// TCP timeouts per run, averaged over seeds.
    pub timeouts: Mean,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct ChainSweep {
    /// All measured points, ordered by (window, hops, variant).
    pub points: Vec<SweepPoint>,
}

impl ChainSweep {
    /// Points for one advertised window (one figure of the paper).
    pub fn for_window(&self, window: u32) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(move |p| p.window == window)
    }

    /// The point for an exact (hops, window, variant) triple.
    pub fn point(&self, hops: usize, window: u32, variant: TcpVariant) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.hops == hops && p.window == window && p.variant == variant)
    }

    /// Renders the paper-style table for one window: rows = hops, columns =
    /// variants; `metric` picks throughput or retransmissions.
    pub fn render(&self, window: u32, metric: SweepMetric) -> String {
        let variants: Vec<TcpVariant> = {
            let mut vs: Vec<TcpVariant> = Vec::new();
            for p in self.for_window(window) {
                if !vs.contains(&p.variant) {
                    vs.push(p.variant);
                }
            }
            vs
        };
        let mut hops: Vec<usize> = self.for_window(window).map(|p| p.hops).collect();
        hops.sort_unstable();
        hops.dedup();
        let mut header = vec!["hops".to_string()];
        header.extend(variants.iter().map(|v| v.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = hops
            .iter()
            .map(|&h| {
                let mut row = vec![h.to_string()];
                for &v in &variants {
                    let cell = self
                        .point(h, window, v)
                        .map(|p| match metric {
                            SweepMetric::ThroughputKbps => p.throughput_kbps.pm(),
                            SweepMetric::Retransmissions => p.retransmissions.pm(),
                            SweepMetric::Timeouts => p.timeouts.pm(),
                        })
                        .unwrap_or_else(|| "-".into());
                    row.push(cell);
                }
                row
            })
            .collect();
        render_table(&header_refs, &rows)
    }
}

/// Which column of the sweep to render.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMetric {
    /// Goodput (Figs. 5.8–5.10).
    ThroughputKbps,
    /// Retransmitted segments (Figs. 5.11–5.13).
    Retransmissions,
    /// TCP timeouts (diagnostic).
    Timeouts,
}

/// Runs the Simulation 2 sweep. Seeds × combos fan out across `cfg.jobs`
/// worker threads; the points (and their ordering) are identical at any
/// worker count.
pub fn throughput_vs_hops(
    hops_list: &[usize],
    windows: &[u32],
    variants: &[TcpVariant],
    cfg: &ExperimentConfig,
) -> ChainSweep {
    let mut combos: Vec<(u32, usize, TcpVariant)> = Vec::new();
    for &window in windows {
        for &hops in hops_list {
            for &variant in variants {
                combos.push((window, hops, variant));
            }
        }
    }
    let points = run_matrix(
        &combos,
        cfg,
        |&(window, hops, variant), sim_cfg| {
            let mut sim = Simulator::new(topology::chain(hops), sim_cfg);
            let (src, dst) = topology::chain_flow(hops);
            let flow = sim.add_flow(FlowSpec::new(src, dst, variant).with_window(window));
            sim.run_until(SimTime::ZERO + cfg.duration);
            let report = sim.flow_report(flow);
            (
                report.throughput_kbps(sim.now()),
                report.sender.retransmissions as f64,
                report.sender.timeouts as f64,
            )
        },
        |&(window, hops, variant), runs| {
            let kbps: Vec<f64> = runs.iter().map(|r| r.0).collect();
            let retx: Vec<f64> = runs.iter().map(|r| r.1).collect();
            let timeouts: Vec<f64> = runs.iter().map(|r| r.2).collect();
            SweepPoint {
                hops,
                window,
                variant,
                throughput_kbps: average(&kbps),
                retransmissions: average(&retx),
                timeouts: average(&timeouts),
            }
        },
    );
    ChainSweep { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::SimConfig;
    use sim_core::SimDuration;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            seeds: vec![11],
            duration: SimDuration::from_secs(5),
            base: SimConfig::default(),
            jobs: 1,
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let sweep =
            throughput_vs_hops(&[2, 4], &[4], &[TcpVariant::NewReno, TcpVariant::Muzha], &tiny());
        assert_eq!(sweep.points.len(), 4);
        let p = sweep.point(4, 4, TcpVariant::Muzha).unwrap();
        assert!(p.throughput_kbps.mean > 0.0);
    }

    #[test]
    fn render_contains_variants_and_hops() {
        let sweep = throughput_vs_hops(&[2], &[4], &[TcpVariant::NewReno], &tiny());
        let s = sweep.render(4, SweepMetric::ThroughputKbps);
        assert!(s.contains("NewReno"));
        assert!(s.contains("hops"));
        let s = sweep.render(4, SweepMetric::Retransmissions);
        assert!(s.lines().count() == 3);
    }
}
