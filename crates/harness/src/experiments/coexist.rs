//! Simulation 3A: fairness when two variants coexist on a cross topology
//! (Figs. 5.15–5.18).
//!
//! An h-hop cross (h ∈ {4, 6, 8}); one FTP flow crosses horizontally, the
//! other vertically, sharing only the centre node. The paper compares
//! NewReno-vs-Vegas (NewReno steals the channel) against NewReno-vs-Muzha
//! (fair sharing), reporting per-flow throughput and Jain's fairness index.

use netstack::{topology, FlowSpec, Simulator, TcpVariant};
use sim_core::stats::jain_fairness_index;
use sim_core::SimTime;

use crate::{average, render_table, run_matrix, ExperimentConfig, Mean};

/// Which pair of variants coexists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoexistKind {
    /// Variant of the horizontal (west → east) flow.
    pub horizontal: TcpVariant,
    /// Variant of the vertical (north → south) flow.
    pub vertical: TcpVariant,
}

/// Result of one (hops, pair) configuration, averaged over seeds.
#[derive(Clone, Debug)]
pub struct CoexistRun {
    /// Cross arm length in hops.
    pub hops: usize,
    /// The coexisting pair.
    pub kind: CoexistKind,
    /// Horizontal flow goodput (kbit/s).
    pub horizontal_kbps: Mean,
    /// Vertical flow goodput (kbit/s).
    pub vertical_kbps: Mean,
    /// Jain fairness index over the two flows, averaged over seeds.
    pub fairness: Mean,
    /// Sum of both flows' goodput (kbit/s).
    pub aggregate_kbps: Mean,
}

/// All coexistence runs.
#[derive(Clone, Debug)]
pub struct CoexistResult {
    /// One entry per (hops, pair).
    pub runs: Vec<CoexistRun>,
}

impl CoexistResult {
    /// Renders the paper-style table: per-flow throughput and fairness.
    pub fn render(&self) -> String {
        let header =
            ["hops", "pair (horiz / vert)", "horiz kbps", "vert kbps", "aggregate", "Jain"];
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.hops.to_string(),
                    format!("{} / {}", r.kind.horizontal.name(), r.kind.vertical.name()),
                    r.horizontal_kbps.pm(),
                    r.vertical_kbps.pm(),
                    r.aggregate_kbps.pm(),
                    format!("{:.3}", r.fairness.mean),
                ]
            })
            .collect();
        render_table(&header, &rows)
    }
}

/// Runs Simulation 3A for every `(hops, pair)` combination, fanning the
/// seed runs across `cfg.jobs` worker threads. Results are identical at
/// any worker count.
pub fn coexistence(
    hops_list: &[usize],
    pairs: &[CoexistKind],
    cfg: &ExperimentConfig,
) -> CoexistResult {
    let mut combos: Vec<(usize, CoexistKind)> = Vec::new();
    for &hops in hops_list {
        for &kind in pairs {
            combos.push((hops, kind));
        }
    }
    let runs = run_matrix(
        &combos,
        cfg,
        |&(hops, kind), sim_cfg| {
            let mut sim = Simulator::new(topology::cross(hops), sim_cfg);
            let (hs, hd) = topology::cross_horizontal_flow(hops);
            let (vs, vd) = topology::cross_vertical_flow(hops);
            let fh = sim.add_flow(FlowSpec::new(hs, hd, kind.horizontal));
            let fv = sim.add_flow(FlowSpec::new(vs, vd, kind.vertical));
            sim.run_until(SimTime::ZERO + cfg.duration);
            let rh = sim.flow_report(fh);
            let rv = sim.flow_report(fv);
            (rh.throughput_kbps(sim.now()), rv.throughput_kbps(sim.now()))
        },
        |&(hops, kind), seed_runs| {
            let h_kbps: Vec<f64> = seed_runs.iter().map(|r| r.0).collect();
            let v_kbps: Vec<f64> = seed_runs.iter().map(|r| r.1).collect();
            let fairness: Vec<f64> =
                seed_runs.iter().map(|&(h, v)| jain_fairness_index(&[h, v])).collect();
            let aggregate: Vec<f64> = seed_runs.iter().map(|&(h, v)| h + v).collect();
            CoexistRun {
                hops,
                kind,
                horizontal_kbps: average(&h_kbps),
                vertical_kbps: average(&v_kbps),
                fairness: average(&fairness),
                aggregate_kbps: average(&aggregate),
            }
        },
    );
    CoexistResult { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::SimConfig;
    use sim_core::SimDuration;

    #[test]
    fn coexist_runs_and_renders() {
        let cfg = ExperimentConfig {
            seeds: vec![11],
            duration: SimDuration::from_secs(5),
            base: SimConfig::default(),
            jobs: 1,
        };
        let result = coexistence(
            &[4],
            &[CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha }],
            &cfg,
        );
        assert_eq!(result.runs.len(), 1);
        let r = &result.runs[0];
        assert!(r.fairness.mean > 0.0 && r.fairness.mean <= 1.0);
        assert!(r.aggregate_kbps.mean > 0.0, "someone must get through");
        let s = result.render();
        assert!(s.contains("NewReno / Muzha"));
        assert!(s.contains("Jain"));
    }
}
