//! Simulation 1: change of congestion window size (Figs. 5.2–5.7).
//!
//! A single FTP/TCP flow over an h-hop chain (h ∈ {4, 8, 16}); the paper
//! plots each variant's congestion window over 0–10 s (and zoomed 0–2 s).

use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use tracelog::{FlowSeries, Layer, TraceFilter, TraceLog};

/// One congestion-window trace (one curve in Figs. 5.2–5.7).
#[derive(Clone, Debug)]
pub struct CwndTrace {
    /// Chain length in hops.
    pub hops: usize,
    /// Sender variant.
    pub variant: TcpVariant,
    /// `(time, cwnd)` samples recorded at every window change.
    pub trace: TimeSeries,
}

impl CwndTrace {
    /// The trace resampled on a uniform grid of `step` over `[0, until)` —
    /// convenient for plotting and for comparing against the paper.
    pub fn resampled(&self, step: SimDuration, until: SimTime) -> Vec<(f64, f64)> {
        tracelog::resample(&self.trace, step, until)
    }

    /// Mean window over `[from, to)` (time weighted).
    pub fn mean_cwnd(&self, from: SimTime, to: SimTime) -> f64 {
        self.trace.time_weighted_mean(from, to).unwrap_or(0.0)
    }

    /// A simple stability measure: the standard deviation of the resampled
    /// window over `[from, to)`. The paper argues Muzha's window is
    /// markedly steadier than NewReno's or SACK's.
    pub fn cwnd_std_dev(&self, from: SimTime, to: SimTime) -> f64 {
        let pts = self.resampled(SimDuration::from_millis(100), to);
        let pts: Vec<f64> =
            pts.into_iter().filter(|&(t, _)| t >= from.as_secs_f64()).map(|(_, v)| v).collect();
        crate::average(&pts).std_dev
    }
}

/// Runs Simulation 1 for the given chain length and variants, over
/// `duration` with one seed (the paper shows single-run traces).
pub fn cwnd_traces(
    hops: usize,
    variants: &[TcpVariant],
    duration: SimDuration,
    cfg: SimConfig,
) -> Vec<CwndTrace> {
    cwnd_traces_batch(&[hops], variants, duration, cfg, 1)
        .into_iter()
        .next()
        .expect("one chain length requested")
}

/// Runs Simulation 1 for several chain lengths at once, fanning the
/// `(hops, variant)` runs across `jobs` worker threads (0 = auto,
/// 1 = serial). Returns one `Vec<CwndTrace>` per entry of `hops_list`, in
/// order; traces are identical at any worker count.
pub fn cwnd_traces_batch(
    hops_list: &[usize],
    variants: &[TcpVariant],
    duration: SimDuration,
    cfg: SimConfig,
    jobs: usize,
) -> Vec<Vec<CwndTrace>> {
    let mut combos: Vec<(usize, TcpVariant)> = Vec::new();
    for &hops in hops_list {
        for &variant in variants {
            combos.push((hops, variant));
        }
    }
    let mut traces = crate::run_batch(&combos, jobs, |&(hops, variant), _| {
        let mut sim = Simulator::new(topology::chain(hops), cfg);
        let (src, dst) = topology::chain_flow(hops);
        let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
        // The window curve comes from the trace subsystem: transport-layer
        // records only, extracted per flow. The `TcpCwnd` stream mirrors the
        // sender's internal change-triggered trace exactly, so this is
        // byte-identical with reading `FlowReport::cwnd_trace` directly.
        sim.install_trace_log(TraceLog::with_filter(TraceFilter::all().layer(Layer::Agt)));
        sim.run_until(SimTime::ZERO + duration);
        let log = sim.take_trace_log().expect("log installed above");
        let series = FlowSeries::collect(flow, None, log.iter());
        CwndTrace { hops, variant, trace: series.cwnd }
    });
    hops_list.iter().map(|_| traces.drain(..variants.len()).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_cover_requested_variants() {
        let traces = cwnd_traces(
            4,
            &[TcpVariant::NewReno, TcpVariant::Muzha],
            SimDuration::from_secs(3),
            SimConfig::default(),
        );
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(t.trace.len() > 1, "{}: window never moved", t.variant);
        }
    }

    #[test]
    fn resampling_is_uniform_grid() {
        let traces =
            cwnd_traces(2, &[TcpVariant::NewReno], SimDuration::from_secs(2), SimConfig::default());
        let pts = traces[0].resampled(SimDuration::from_millis(500), SimTime::from_secs_f64(2.0));
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[1].0, 0.5);
    }

    #[test]
    fn mean_and_stability_computable() {
        let traces =
            cwnd_traces(2, &[TcpVariant::Muzha], SimDuration::from_secs(3), SimConfig::default());
        let m = traces[0].mean_cwnd(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0));
        assert!(m >= 1.0, "mean cwnd {m}");
        let _ = traces[0].cwnd_std_dev(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0));
    }
}
