//! Glue between the generic explorer (`faultline::mc`) and the simulator:
//! builds one full simulation per branch under the scenario-corpus
//! convention (4-hop chain, one NewReno flow end to end, the script's seed
//! and duration) and feeds the invariant checker's findings back to the
//! search. `faultline` cannot depend on `netstack`, so this is where the
//! two meet; the `mc` binary and the test suite both drive exploration
//! through here so CLI verdicts and test assertions can never disagree.

use faultline::mc::{self, BranchOutcome, McConfig, McVerdict};
use faultline::{InvariantChecker, ScenarioScript};
use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::{SimDuration, SimTime, TieOrder};
use tracelog::TraceLog;

/// Corpus-convention chain length (nodes 0..=4).
const HOPS: usize = 4;
/// Fallback duration for scripts that do not pin one.
const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(10);

/// Builds the bare corpus-convention simulator for `script`: 4-hop chain,
/// one NewReno flow end to end, the script's seed. The scenario itself is
/// *not* loaded — callers either load it (fresh run) or overwrite the whole
/// state via [`Simulator::restore`] (branch resume).
fn build_sim(script: &ScenarioScript) -> Simulator {
    let seed = script.seed.unwrap_or(1);
    let cfg = SimConfig { seed, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(HOPS), cfg);
    let (src, dst) = topology::chain_flow(HOPS);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim
}

/// The corpus-convention simulator for `script` with the scenario loaded —
/// the shape every harness entry point (the test corpus, `--bin mc`,
/// `--bin checkpoint`) runs. A [`Simulator::restore`] target for snapshots
/// taken under the same convention: restoring overwrites the loaded
/// scenario state wholesale, so the same builder serves both legs.
pub fn corpus_sim(script: &ScenarioScript) -> Simulator {
    let mut sim = build_sim(script);
    sim.load_scenario(script);
    sim
}

/// The script's run duration under the corpus convention (10 s fallback).
pub fn corpus_duration(script: &ScenarioScript) -> SimDuration {
    script.duration.unwrap_or(DEFAULT_DURATION)
}

/// Builds the corpus-convention simulator for `script` and runs it to the
/// script's duration under `order`, returning the sealed simulator, the
/// consumed tie order, and the sealed checker.
fn run_with_order(
    script: &ScenarioScript,
    order: TieOrder,
    log: Option<TraceLog>,
) -> (Simulator, TieOrder, InvariantChecker) {
    let duration = script.duration.unwrap_or(DEFAULT_DURATION);
    let mut sim = build_sim(script);
    sim.load_scenario(script);
    sim.install_checker(InvariantChecker::new());
    sim.install_tie_order(order);
    if let Some(log) = log {
        sim.install_trace_log(log);
    }
    sim.run_until(SimTime::ZERO + duration);
    let order = sim.take_tie_order().expect("tie order was installed");
    let checker = sim.take_checker().expect("checker was installed");
    (sim, order, checker)
}

/// Runs one branch of the exploration: `script` (already shifted to its
/// placement) replayed under `decisions` with the tie window from `cfg`.
pub fn run_branch(script: &ScenarioScript, cfg: &McConfig, decisions: &[usize]) -> BranchOutcome {
    run_branch_counted(script, cfg, decisions).0
}

/// [`run_branch`] plus the branch's total dispatched-event count — the
/// denominator for measuring what checkpoint resume saves.
pub fn run_branch_counted(
    script: &ScenarioScript,
    cfg: &McConfig,
    decisions: &[usize],
) -> (BranchOutcome, u64) {
    let mut order = TieOrder::new(decisions.to_vec());
    if let Some((start, end)) = cfg.tie_window {
        order = order.with_window(start, end);
    }
    let (sim, order, checker) = run_with_order(script, order, None);
    let mut violations: Vec<String> = checker.violations().iter().map(|v| v.to_string()).collect();
    if order.diverged() {
        violations.push("replay-divergence: a decision exceeded its tie group".to_string());
    }
    let outcome =
        BranchOutcome { trace_hash: sim.trace_hash(), choices: order.into_choices(), violations };
    (outcome, sim.perf().events_processed)
}

/// Explores every bounded interleaving of `script` under `cfg`: fault
/// placements on the shift grid × tie permutations inside the window, the
/// full invariant checker on every branch. See [`faultline::mc::explore`].
pub fn explore_scenario(script: &ScenarioScript, cfg: &McConfig) -> McVerdict {
    let placed = mc::placements(script, cfg);
    mc::explore(&script.name, placed.len(), cfg, |placement, decisions| {
        run_branch(&placed[placement], cfg, decisions)
    })
}

// ----------------------------------------------------------------------
// Checkpointed branch resume (ROADMAP item 5)
// ----------------------------------------------------------------------

/// A mid-run checkpoint of one placement's corpus-convention simulation:
/// the serialized simulator plus the live (unsealed) checker state, taken
/// just before the tie window opens. Branch resumes restore the bytes and
/// re-install a clone of the checker, because observers are not part of
/// the snapshot.
#[derive(Debug)]
pub struct Checkpoint {
    bytes: Vec<u8>,
    checker: InvariantChecker,
    /// Events the shared prefix dispatched to reach the checkpoint.
    pub prefix_events: u64,
}

/// Work accounting for a checkpointed exploration, for asserting (and
/// reporting) the win over replaying every branch from t = 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResumeStats {
    /// Events executed once per placement to build its checkpoint.
    pub prefix_events: u64,
    /// Events replayed across all branches after restoring a checkpoint.
    pub replayed_events: u64,
    /// Events the same branches cost replayed from t = 0 (each branch's
    /// prefix plus its suffix — the prefix is shared, so a full replay
    /// pays it once per branch instead of once per placement).
    pub full_replay_events: u64,
}

impl ResumeStats {
    /// Total events a checkpointed exploration actually dispatched.
    pub fn resumed_events(&self) -> u64 {
        self.prefix_events + self.replayed_events
    }
}

/// Runs the shared prefix of `script` once — up to, but *not* including,
/// the instant `at` — and captures a [`Checkpoint`]. Events at exactly
/// `at` are tie candidates of the exploration window, so they must be
/// dispatched under each branch's tie order, not consumed FIFO here.
pub fn checkpoint_before(script: &ScenarioScript, at: SimTime) -> Checkpoint {
    let mut sim = build_sim(script);
    sim.load_scenario(script);
    sim.install_checker(InvariantChecker::new());
    let stop = SimTime::from_nanos(at.as_nanos().saturating_sub(1));
    sim.run_until(stop);
    let checker = sim.checker().cloned().expect("checker was installed");
    Checkpoint { bytes: sim.snapshot(), checker, prefix_events: sim.perf().events_processed }
}

/// Runs one branch by restoring `checkpoint` and replaying only the suffix
/// under `decisions`. Returns the branch outcome — bit-identical to
/// [`run_branch`] on the same inputs — and the number of suffix events
/// replayed.
pub fn run_branch_resumed(
    script: &ScenarioScript,
    cfg: &McConfig,
    checkpoint: &Checkpoint,
    decisions: &[usize],
) -> (BranchOutcome, u64) {
    let duration = script.duration.unwrap_or(DEFAULT_DURATION);
    let mut sim = build_sim(script);
    sim.restore(&checkpoint.bytes).expect("checkpoint restores into its config twin");
    sim.install_checker(checkpoint.checker.clone());
    let mut order = TieOrder::new(decisions.to_vec());
    if let Some((start, end)) = cfg.tie_window {
        order = order.with_window(start, end);
    }
    sim.install_tie_order(order);
    sim.run_until(SimTime::ZERO + duration);
    let order = sim.take_tie_order().expect("tie order was installed");
    let checker = sim.take_checker().expect("checker was installed");
    let mut violations: Vec<String> = checker.violations().iter().map(|v| v.to_string()).collect();
    if order.diverged() {
        violations.push("replay-divergence: a decision exceeded its tie group".to_string());
    }
    let replayed = sim.perf().events_processed - checkpoint.prefix_events;
    let outcome =
        BranchOutcome { trace_hash: sim.trace_hash(), choices: order.into_choices(), violations };
    (outcome, replayed)
}

/// [`explore_scenario`] with restore-from-checkpoint branch resume: the
/// prefix before the tie window runs once per fault placement, is
/// snapshotted, and every branch restores that snapshot and replays only
/// its suffix. Verdicts are bit-identical to the full-replay explorer —
/// same hashes, same choices, same violations — at O(suffix) per branch.
///
/// # Panics
///
/// Panics if `cfg.tie_window` is `None`: without a window there is no
/// shared prefix to checkpoint.
pub fn explore_scenario_resumed(
    script: &ScenarioScript,
    cfg: &McConfig,
) -> (McVerdict, ResumeStats) {
    let (start, _) = cfg.tie_window.expect("checkpoint resume needs a tie window");
    let placed = mc::placements(script, cfg);
    let checkpoints: Vec<Checkpoint> = placed.iter().map(|p| checkpoint_before(p, start)).collect();
    let mut stats = ResumeStats {
        prefix_events: checkpoints.iter().map(|c| c.prefix_events).sum(),
        ..ResumeStats::default()
    };
    let verdict = mc::explore(&script.name, placed.len(), cfg, |placement, decisions| {
        let (outcome, replayed) =
            run_branch_resumed(&placed[placement], cfg, &checkpoints[placement], decisions);
        stats.replayed_events += replayed;
        stats.full_replay_events += checkpoints[placement].prefix_events + replayed;
        outcome
    });
    (verdict, stats)
}

/// Replays the counter-example branch of `verdict` with a flight recorder
/// installed and renders every dump it triggered (the lead-up window to
/// each invariant violation) as ns-2 trace lines. Returns `None` when the
/// verdict has no counter-example.
pub fn flight_recorder_dump(
    script: &ScenarioScript,
    cfg: &McConfig,
    verdict: &McVerdict,
) -> Option<String> {
    use std::fmt::Write as _;
    let ce = verdict.counter_example.as_ref()?;
    let placed = mc::placements(script, cfg);
    let placement = placed.get(ce.placement)?;
    let mut order = TieOrder::new(ce.decisions.clone());
    if let Some((start, end)) = cfg.tie_window {
        order = order.with_window(start, end);
    }
    let (mut sim, _, _) = run_with_order(placement, order, Some(TraceLog::flight_recorder(64)));
    let log = sim.take_trace_log().expect("flight recorder was installed");
    let mut out = String::new();
    for dump in log.dumps() {
        let _ = writeln!(out, "# flight-recorder dump at {} — {}", dump.at, dump.reason);
        out.push_str(&tracelog::ns2::render(dump.entries.iter()));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_break() -> ScenarioScript {
        ScenarioScript::parse(
            "name mini-break\nseed 3\nduration 4\nat 1.5 link-down 2 3\nat 2.5 link-up 2 3\n",
        )
        .expect("fixture parses")
    }

    #[test]
    fn branch_zero_matches_the_plain_corpus_run() {
        let script = chain_break();
        let cfg = McConfig::default();
        let a = run_branch(&script, &cfg, &[]);
        let b = run_branch(&script, &cfg, &[]);
        assert_eq!(a.trace_hash, b.trace_hash, "replays of the same branch must agree");
        assert_eq!(a.choices, b.choices);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
    }

    #[test]
    fn windowed_exploration_of_a_short_break_proves_clean() {
        let script = chain_break();
        let cfg = McConfig {
            tie_window: Some((SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(1.502))),
            max_branches: 200,
            ..McConfig::default()
        };
        let verdict = explore_scenario(&script, &cfg);
        assert!(
            verdict.proved(),
            "expected a proof, got {} ({} branches)",
            verdict.status(),
            verdict.branches_explored
        );
        assert!(verdict.branches_explored > 1, "the window must actually branch");
    }

    fn windowed_cfg() -> McConfig {
        McConfig {
            tie_window: Some((SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(1.502))),
            max_branches: 200,
            ..McConfig::default()
        }
    }

    #[test]
    fn resumed_branch_is_bit_identical_to_full_replay() {
        let script = chain_break();
        let cfg = windowed_cfg();
        let checkpoint = checkpoint_before(&script, SimTime::from_secs_f64(1.5));
        for decisions in [vec![], vec![1]] {
            let (full, total) = run_branch_counted(&script, &cfg, &decisions);
            let (resumed, replayed) = run_branch_resumed(&script, &cfg, &checkpoint, &decisions);
            assert_eq!(full.trace_hash, resumed.trace_hash, "hash for decisions {decisions:?}");
            assert_eq!(full.choices, resumed.choices, "choices for decisions {decisions:?}");
            assert_eq!(full.violations, resumed.violations);
            assert!(replayed > 0, "the suffix must contain events");
            assert_eq!(
                checkpoint.prefix_events + replayed,
                total,
                "prefix + suffix must account for every event of the full replay"
            );
        }
    }

    #[test]
    fn checkpointed_exploration_matches_full_replay_with_fewer_events() {
        let script = chain_break();
        let cfg = windowed_cfg();
        let full = explore_scenario(&script, &cfg);
        let (resumed, stats) = explore_scenario_resumed(&script, &cfg);
        assert_eq!(
            full.render_log(),
            resumed.render_log(),
            "checkpointed and full-replay explorations must agree branch for branch"
        );
        assert!(resumed.branches_explored > 1, "the window must actually branch");
        assert!(
            stats.resumed_events() < stats.full_replay_events,
            "resume must dispatch fewer events than full replay: {stats:?}"
        );
    }

    /// The PR 7 planted ordering bug, re-planted at the harness level: a
    /// branch whose in-window tie resolution deviates from FIFO trips the
    /// invariant (decision vector `[1]`, exactly the toy's counter-example).
    /// Checkpoint resume must reproduce the same counter-example as full
    /// replay while dispatching strictly fewer events.
    #[test]
    fn checkpoint_resume_reproduces_the_planted_counter_example_cheaper() {
        let script = chain_break();
        let cfg = windowed_cfg();
        let plant = |mut outcome: BranchOutcome| {
            if outcome.choices.iter().any(|c| c.chosen != 0) {
                outcome.violations.push("planted: a deferred event won its tie".to_string());
            }
            outcome
        };

        let placed = mc::placements(&script, &cfg);
        let mut full_events = 0u64;
        let full = mc::explore(&script.name, placed.len(), &cfg, |p, decisions| {
            let (outcome, events) = run_branch_counted(&placed[p], &cfg, decisions);
            full_events += events;
            plant(outcome)
        });
        let ce_full = full.counter_example.as_ref().expect("full replay finds the planted bug");
        assert_eq!(ce_full.decisions, vec![1], "the PR 7 planted counter-example");

        let start = cfg.tie_window.unwrap().0;
        let checkpoints: Vec<Checkpoint> =
            placed.iter().map(|p| checkpoint_before(p, start)).collect();
        let mut resumed_events: u64 = checkpoints.iter().map(|c| c.prefix_events).sum();
        let resumed = mc::explore(&script.name, placed.len(), &cfg, |p, decisions| {
            let (outcome, replayed) =
                run_branch_resumed(&placed[p], &cfg, &checkpoints[p], decisions);
            resumed_events += replayed;
            plant(outcome)
        });
        let ce = resumed.counter_example.as_ref().expect("resume finds the planted bug");
        assert_eq!(ce.decisions, ce_full.decisions, "same counter-example either way");
        assert_eq!(ce.placement, ce_full.placement);
        assert!(
            resumed_events < full_events,
            "checkpoint resume must replay fewer events: {resumed_events} resumed vs {full_events} full"
        );
    }
}
