//! Glue between the generic explorer (`faultline::mc`) and the simulator:
//! builds one full simulation per branch under the scenario-corpus
//! convention (4-hop chain, one NewReno flow end to end, the script's seed
//! and duration) and feeds the invariant checker's findings back to the
//! search. `faultline` cannot depend on `netstack`, so this is where the
//! two meet; the `mc` binary and the test suite both drive exploration
//! through here so CLI verdicts and test assertions can never disagree.

use faultline::mc::{self, BranchOutcome, McConfig, McVerdict};
use faultline::{InvariantChecker, ScenarioScript};
use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::{SimDuration, SimTime, TieOrder};
use tracelog::TraceLog;

/// Corpus-convention chain length (nodes 0..=4).
const HOPS: usize = 4;
/// Fallback duration for scripts that do not pin one.
const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(10);

/// Builds the corpus-convention simulator for `script` and runs it to the
/// script's duration under `order`, returning the sealed simulator, the
/// consumed tie order, and the sealed checker.
fn run_with_order(
    script: &ScenarioScript,
    order: TieOrder,
    log: Option<TraceLog>,
) -> (Simulator, TieOrder, InvariantChecker) {
    let seed = script.seed.unwrap_or(1);
    let duration = script.duration.unwrap_or(DEFAULT_DURATION);
    let cfg = SimConfig { seed, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(HOPS), cfg);
    let (src, dst) = topology::chain_flow(HOPS);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.load_scenario(script);
    sim.install_checker(InvariantChecker::new());
    sim.install_tie_order(order);
    if let Some(log) = log {
        sim.install_trace_log(log);
    }
    sim.run_until(SimTime::ZERO + duration);
    let order = sim.take_tie_order().expect("tie order was installed");
    let checker = sim.take_checker().expect("checker was installed");
    (sim, order, checker)
}

/// Runs one branch of the exploration: `script` (already shifted to its
/// placement) replayed under `decisions` with the tie window from `cfg`.
pub fn run_branch(script: &ScenarioScript, cfg: &McConfig, decisions: &[usize]) -> BranchOutcome {
    let mut order = TieOrder::new(decisions.to_vec());
    if let Some((start, end)) = cfg.tie_window {
        order = order.with_window(start, end);
    }
    let (sim, order, checker) = run_with_order(script, order, None);
    let mut violations: Vec<String> = checker.violations().iter().map(|v| v.to_string()).collect();
    if order.diverged() {
        violations.push("replay-divergence: a decision exceeded its tie group".to_string());
    }
    BranchOutcome { trace_hash: sim.trace_hash(), choices: order.into_choices(), violations }
}

/// Explores every bounded interleaving of `script` under `cfg`: fault
/// placements on the shift grid × tie permutations inside the window, the
/// full invariant checker on every branch. See [`faultline::mc::explore`].
pub fn explore_scenario(script: &ScenarioScript, cfg: &McConfig) -> McVerdict {
    let placed = mc::placements(script, cfg);
    mc::explore(&script.name, placed.len(), cfg, |placement, decisions| {
        run_branch(&placed[placement], cfg, decisions)
    })
}

/// Replays the counter-example branch of `verdict` with a flight recorder
/// installed and renders every dump it triggered (the lead-up window to
/// each invariant violation) as ns-2 trace lines. Returns `None` when the
/// verdict has no counter-example.
pub fn flight_recorder_dump(
    script: &ScenarioScript,
    cfg: &McConfig,
    verdict: &McVerdict,
) -> Option<String> {
    use std::fmt::Write as _;
    let ce = verdict.counter_example.as_ref()?;
    let placed = mc::placements(script, cfg);
    let placement = placed.get(ce.placement)?;
    let mut order = TieOrder::new(ce.decisions.clone());
    if let Some((start, end)) = cfg.tie_window {
        order = order.with_window(start, end);
    }
    let (mut sim, _, _) = run_with_order(placement, order, Some(TraceLog::flight_recorder(64)));
    let log = sim.take_trace_log().expect("flight recorder was installed");
    let mut out = String::new();
    for dump in log.dumps() {
        let _ = writeln!(out, "# flight-recorder dump at {} — {}", dump.at, dump.reason);
        out.push_str(&tracelog::ns2::render(dump.entries.iter()));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_break() -> ScenarioScript {
        ScenarioScript::parse(
            "name mini-break\nseed 3\nduration 4\nat 1.5 link-down 2 3\nat 2.5 link-up 2 3\n",
        )
        .expect("fixture parses")
    }

    #[test]
    fn branch_zero_matches_the_plain_corpus_run() {
        let script = chain_break();
        let cfg = McConfig::default();
        let a = run_branch(&script, &cfg, &[]);
        let b = run_branch(&script, &cfg, &[]);
        assert_eq!(a.trace_hash, b.trace_hash, "replays of the same branch must agree");
        assert_eq!(a.choices, b.choices);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
    }

    #[test]
    fn windowed_exploration_of_a_short_break_proves_clean() {
        let script = chain_break();
        let cfg = McConfig {
            tie_window: Some((SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(1.502))),
            max_branches: 200,
            ..McConfig::default()
        };
        let verdict = explore_scenario(&script, &cfg);
        assert!(
            verdict.proved(),
            "expected a proof, got {} ({} branches)",
            verdict.status(),
            verdict.branches_explored
        );
        assert!(verdict.branches_explored > 1, "the window must actually branch");
    }
}
