//! CSV export of experiment results, for external plotting.
//!
//! Everything is plain `String`-building — no serialisation dependency —
//! and round-trips through standard CSV readers (no quoting is needed
//! because all emitted fields are numeric or simple identifiers).

use netstack::TcpVariant;

use crate::experiments::{ChainSweep, CoexistResult, CwndTrace, DynamicsResult};

/// One `(x, y)` series as two-column CSV with a header.
///
/// # Example
///
/// ```
/// use harness::export::series_csv;
/// let csv = series_csv("time_s", "cwnd", &[(0.0, 1.0), (0.5, 2.0)]);
/// assert_eq!(csv.lines().count(), 3);
/// assert!(csv.starts_with("time_s,cwnd\n"));
/// ```
pub fn series_csv(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

/// The chain sweep (Figs. 5.8–5.13) as long-format CSV:
/// `window,hops,variant,throughput_kbps,throughput_sd,retransmissions,timeouts`.
pub fn sweep_csv(sweep: &ChainSweep) -> String {
    let mut out = String::from(
        "window,hops,variant,throughput_kbps,throughput_sd,retransmissions,timeouts\n",
    );
    for p in &sweep.points {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.2},{:.2}\n",
            p.window,
            p.hops,
            p.variant.name(),
            p.throughput_kbps.mean,
            p.throughput_kbps.std_dev,
            p.retransmissions.mean,
            p.timeouts.mean,
        ));
    }
    out
}

/// The coexistence results (Figs. 5.15–5.18) as CSV:
/// `hops,horizontal,vertical,horiz_kbps,vert_kbps,aggregate_kbps,jain`.
pub fn coexist_csv(result: &CoexistResult) -> String {
    let mut out =
        String::from("hops,horizontal,vertical,horiz_kbps,vert_kbps,aggregate_kbps,jain\n");
    for r in &result.runs {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3},{:.4}\n",
            r.hops,
            r.kind.horizontal.name(),
            r.kind.vertical.name(),
            r.horizontal_kbps.mean,
            r.vertical_kbps.mean,
            r.aggregate_kbps.mean,
            r.fairness.mean,
        ));
    }
    out
}

/// A congestion-window trace (Figs. 5.2–5.7) as CSV, resampled on `step_s`
/// over `[0, until_s)`.
pub fn cwnd_csv(trace: &CwndTrace, step_s: f64, until_s: f64) -> String {
    let pts = trace.resampled(
        sim_core::SimDuration::from_secs_f64(step_s),
        sim_core::SimTime::from_secs_f64(until_s),
    );
    series_csv("time_s", "cwnd", &pts)
}

/// The three-flow dynamics (Figs. 5.19–5.22) as long-format CSV:
/// `flow,time_s,kbps`.
pub fn dynamics_csv(result: &DynamicsResult) -> String {
    let mut out = String::from("flow,time_s,kbps\n");
    for (i, series) in result.series.iter().enumerate() {
        for (t, y) in series {
            out.push_str(&format!("{},{t},{y:.3}\n", i + 1));
        }
    }
    out
}

/// Variant list helper for scripts: one name per line.
pub fn variants_csv(variants: &[TcpVariant]) -> String {
    let mut out = String::from("variant\n");
    for v in variants {
        out.push_str(v.name());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::throughput_vs_hops;
    use crate::ExperimentConfig;
    use netstack::SimConfig;
    use sim_core::SimDuration;

    #[test]
    fn sweep_csv_has_one_row_per_point() {
        let cfg = ExperimentConfig {
            seeds: vec![11],
            duration: SimDuration::from_secs(3),
            base: SimConfig::default(),
            jobs: 1,
        };
        let sweep = throughput_vs_hops(&[2], &[4, 8], &[TcpVariant::NewReno], &cfg);
        let csv = sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 1 + sweep.points.len());
        assert!(csv.contains("NewReno"));
        // No quoting needed anywhere.
        assert!(!csv.contains('"'));
    }

    #[test]
    fn series_csv_shape() {
        let csv = series_csv("a", "b", &[(1.0, 2.0)]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn variants_csv_lists_names() {
        let csv = variants_csv(&TcpVariant::PAPER);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("Muzha"));
    }
}
