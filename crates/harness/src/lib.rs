//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Chapter 5).
//!
//! Each experiment module mirrors one simulation of the paper:
//!
//! | Paper artifact | Module / entry point |
//! |---|---|
//! | Figs. 5.2–5.7 (cwnd vs. time, 4/8/16-hop chains)   | [`experiments::cwnd_traces`] |
//! | Figs. 5.8–5.10 (throughput vs. hops, window 4/8/32)| [`experiments::throughput_vs_hops`] |
//! | Figs. 5.11–5.13 (retransmissions vs. hops)         | same sweep, retransmission column |
//! | Figs. 5.15–5.18 (coexistence & Jain fairness)      | [`experiments::coexistence`] |
//! | Figs. 5.19–5.22 (throughput dynamics, 3 flows)     | [`experiments::throughput_dynamics`] |
//!
//! Runs are averaged over several seeds (the paper reports single NS2 runs;
//! we prefer mean ± spread for honesty about variance). All entry points
//! return plain-data result structs whose `Display` impls print the same
//! rows/series the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod mc;
mod parallel;
mod runner;
mod table;
pub mod tracecap;
mod wallclock;

pub use parallel::{effective_jobs, run_batch, run_matrix};
pub use runner::{average, significantly_greater, welch_t, ExperimentConfig, Mean};
pub use table::{render_series, render_table};
pub use wallclock::WallClock;
