//! Parallel batch execution for embarrassingly parallel experiment runs.
//!
//! Every experiment in this harness is a cross product of configuration
//! combos and seeds, and every `(combo, seed)` run builds its own
//! [`netstack::Simulator`] with its own seeded RNG — runs share nothing, so
//! executing them on worker threads cannot change any result. The engine
//! guarantees *byte-identical* output regardless of worker count by
//! collecting results **by submission index**: workers race over which runs
//! they execute, never over where results land.
//!
//! Built on [`std::thread::scope`] only — no extra dependencies — so
//! closures may borrow from the caller's stack.

use crate::runner::ExperimentConfig;
use netstack::SimConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing jobs setting: `0` means one worker per available
/// core (serial if parallelism cannot be probed), anything else is taken
/// literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Runs `task` once per item of `items` and returns the outputs in item
/// order, fanning the runs across `jobs` worker threads (`0` = auto,
/// `1` = serial inline). The output vector is independent of the worker
/// count and of scheduling: slot `i` always holds `task(&items[i], i)`.
///
/// # Panics
///
/// Propagates a panic from any `task` invocation.
pub fn run_batch<I, T, F>(items: &[I], jobs: usize, task: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, item)| task(item, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let task = &task;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        produced.push((idx, task(&items[idx], idx)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (idx, value) in handle.join().expect("batch worker panicked") {
                slots[idx] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every index executed exactly once")).collect()
}

/// Runs the full `(item, seed)` matrix of an experiment — every item of
/// `items` under every per-seed [`SimConfig`] of `cfg` — across
/// `cfg.jobs` workers, then hands each item its seed-ordered run results
/// for aggregation. Output order matches `items`; aggregation happens on
/// the caller's thread, in order, so summary statistics and rendered
/// tables are byte-identical to a serial run.
pub fn run_matrix<I, R, T, Run, Agg>(
    items: &[I],
    cfg: &ExperimentConfig,
    run: Run,
    mut aggregate: Agg,
) -> Vec<T>
where
    I: Sync,
    R: Send,
    Run: Fn(&I, SimConfig) -> R + Sync,
    Agg: FnMut(&I, Vec<R>) -> T,
{
    let sims: Vec<SimConfig> = cfg.sim_configs().collect();
    let cells: Vec<(usize, SimConfig)> =
        items.iter().enumerate().flat_map(|(i, _)| sims.iter().map(move |&sim| (i, sim))).collect();
    let mut results = run_batch(&cells, cfg.jobs, |&(i, sim), _| run(&items[i], sim));
    // Regroup the flat results into per-item chunks (seed order preserved).
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let runs: Vec<R> = results.drain(..sims.len().min(results.len())).collect();
        debug_assert_eq!(runs.len(), sims.len(), "item {i} missing runs");
        out.push(aggregate(item, runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_item_order_at_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_batch(&items, 1, |&x, i| (x * x, i));
        for jobs in [2, 3, 8, 64] {
            let par = run_batch(&items, jobs, |&x, i| (x * x, i));
            assert_eq!(par, serial, "jobs = {jobs}");
        }
        assert_eq!(serial[5], (25, 5));
    }

    #[test]
    fn batch_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_batch(&empty, 4, |&x, _| x).is_empty());
        assert_eq!(run_batch(&[7u32], 4, |&x, _| x + 1), vec![8]);
    }

    #[test]
    fn auto_jobs_resolves_to_at_least_one() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn matrix_groups_seed_runs_per_item() {
        let cfg =
            ExperimentConfig { seeds: vec![11, 23, 37], ..ExperimentConfig::quick() }.with_jobs(4);
        let items = ["a", "b"];
        let out = run_matrix(
            &items,
            &cfg,
            |item, sim| format!("{item}:{}", sim.seed),
            |item, runs| (item.to_string(), runs),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[0].1, vec!["a:11", "a:23", "a:37"]);
        assert_eq!(out[1].1, vec!["b:11", "b:23", "b:37"]);
    }

    #[test]
    fn matrix_parallel_matches_serial() {
        let items: Vec<u64> = (0..5).collect();
        let mk = |jobs| {
            let cfg = ExperimentConfig::quick().with_jobs(jobs);
            run_matrix(
                &items,
                &cfg,
                |&item, sim| item * 1000 + sim.seed,
                |&item, runs| (item, runs),
            )
        };
        assert_eq!(mk(1), mk(6));
    }
}
