//! The one sanctioned wall-clock shim in the workspace.
//!
//! Simulation state must never observe host time — determinism depends on
//! it, and `simlint` bans `std::time::Instant` in every sim-state crate.
//! Measurement code is different: events-per-second and batch speed-up
//! numbers *are* wall-clock quantities. [`WallClock`] is the narrow door
//! those measurements go through; it lives in the harness (licensed by
//! simlint alongside the bench binary) and its readings must only ever
//! flow into reports, never back into simulator inputs.

use std::time::Instant;

/// A started wall-clock timer for measuring harness-side elapsed time.
///
/// # Example
///
/// ```
/// use harness::WallClock;
/// let clock = WallClock::start();
/// let elapsed = clock.elapsed_secs();
/// assert!(elapsed >= 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// Starts a timer now.
    pub fn start() -> Self {
        WallClock { started: Instant::now() }
    }

    /// Seconds of host time elapsed since [`WallClock::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let clock = WallClock::start();
        let a = clock.elapsed_secs();
        let b = clock.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
