//! IEEE 802.11 DCF (Distributed Coordination Function) MAC layer.
//!
//! Implements the access method the paper's NS2 setup uses (§2.2, §5.1):
//!
//! * CSMA/CA with **physical carrier sense** (provided by the PHY via a
//!   [`MediumView`] snapshot) and **virtual carrier sense** (the NAV, set
//!   from overheard RTS/CTS/DATA duration fields),
//! * the four-way **RTS → CTS → DATA → ACK** exchange for unicast data,
//!   mitigating the hidden-terminal problem,
//! * binary exponential backoff with CWmin 31 / CWmax 1023 and per-slot
//!   countdown that freezes while the medium is busy,
//! * DIFS/SIFS/EIFS interframe spaces (EIFS after corrupted receptions),
//! * short (RTS) and long (DATA) retry limits; exceeding them reports a
//!   **link failure** to the routing layer — the trigger for AODV route
//!   repair that the paper identifies as a major TCP disruptor,
//! * broadcast data (no RTS/CTS/ACK), used by AODV floods.
//!
//! The MAC is a pure state machine: it never touches the event loop or the
//! radio directly. The `netstack` driver feeds it frames, timer firings and
//! medium transitions, and executes the [`MacOutput`] actions it returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcf;
mod params;

pub use dcf::{Mac, MacOutput, MacOutputs, MacStats, MediumView, TimerId};
pub use params::MacParams;
