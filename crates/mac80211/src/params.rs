//! MAC-layer timing and policy parameters.

use sim_core::SimDuration;
use wire::{FrameKind, MacFrame, CTS_BYTES, MAC_ACK_BYTES, RTS_BYTES};

/// Timing and policy parameters of the 802.11 DCF MAC.
///
/// Defaults are the 802.11 DSSS values used by ns-2 and hence the paper:
/// 20 µs slots, 10 µs SIFS, CWmin 31 / CWmax 1023, short retry limit 7,
/// long retry limit 4, RTS/CTS enabled for all unicast data.
///
/// # Example
///
/// ```
/// use mac80211::MacParams;
/// let p = MacParams::default();
/// assert_eq!(p.difs().as_micros(), 50);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MacParams {
    /// Backoff slot time.
    pub slot: SimDuration,
    /// Short interframe space (between exchange frames).
    pub sifs: SimDuration,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Maximum RTS attempts before declaring link failure.
    pub short_retry_limit: u32,
    /// Maximum DATA attempts before declaring link failure.
    pub long_retry_limit: u32,
    /// Bit rate for DATA frames (must match the PHY).
    pub data_rate_bps: u64,
    /// Bit rate for control frames (must match the PHY).
    pub basic_rate_bps: u64,
    /// PLCP preamble + header time (must match the PHY).
    pub plcp: SimDuration,
    /// Upper bound on propagation delay, used as guard time in timeouts
    /// and NAV values.
    pub max_prop: SimDuration,
    /// Whether unicast data uses the RTS/CTS exchange.
    pub rts_enabled: bool,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            cw_min: 31,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
            data_rate_bps: 2_000_000,
            basic_rate_bps: 1_000_000,
            plcp: SimDuration::from_micros(192),
            max_prop: SimDuration::from_micros(2),
            rts_enabled: true,
        }
    }
}

impl MacParams {
    /// DIFS = SIFS + 2 × slot.
    pub fn difs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }

    /// EIFS = SIFS + DIFS + (time to send an ACK at the basic rate);
    /// applied after a corrupted reception.
    pub fn eifs(&self) -> SimDuration {
        self.sifs + self.difs() + self.control_airtime(MAC_ACK_BYTES)
    }

    /// Airtime of a control frame of `bytes` bytes.
    pub fn control_airtime(&self, bytes: u32) -> SimDuration {
        self.plcp + SimDuration::for_bits(u64::from(bytes) * 8, self.basic_rate_bps)
    }

    /// Airtime of a DATA frame of `bytes` bytes.
    pub fn data_airtime(&self, bytes: u32) -> SimDuration {
        self.plcp + SimDuration::for_bits(u64::from(bytes) * 8, self.data_rate_bps)
    }

    /// Airtime of any frame.
    pub fn frame_airtime(&self, frame: &MacFrame) -> SimDuration {
        match frame.kind() {
            FrameKind::Data => self.data_airtime(frame.size_bytes()),
            _ => self.control_airtime(frame.size_bytes()),
        }
    }

    /// Airtime of an RTS frame.
    pub fn rts_airtime(&self) -> SimDuration {
        self.control_airtime(RTS_BYTES)
    }

    /// Airtime of a CTS frame.
    pub fn cts_airtime(&self) -> SimDuration {
        self.control_airtime(CTS_BYTES)
    }

    /// Airtime of a MAC ACK frame.
    pub fn ack_airtime(&self) -> SimDuration {
        self.control_airtime(MAC_ACK_BYTES)
    }

    /// How long after our RTS transmission ends we wait for a CTS before
    /// declaring the attempt failed.
    pub fn cts_timeout(&self) -> SimDuration {
        self.sifs + self.cts_airtime() + self.max_prop * 2 + self.slot
    }

    /// How long after our DATA transmission ends we wait for an ACK.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.max_prop * 2 + self.slot
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero rates or an inverted contention window.
    pub fn validate(&self) {
        assert!(self.data_rate_bps > 0 && self.basic_rate_bps > 0, "rates must be positive");
        assert!(self.cw_min > 0 && self.cw_min <= self.cw_max, "invalid contention window");
        assert!(
            self.short_retry_limit > 0 && self.long_retry_limit > 0,
            "retry limits must be positive"
        );
    }
}

impl sim_core::Snapshotable for MacParams {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.slot);
        w.put(&self.sifs);
        w.put_u32(self.cw_min);
        w.put_u32(self.cw_max);
        w.put_u32(self.short_retry_limit);
        w.put_u32(self.long_retry_limit);
        w.put_u64(self.data_rate_bps);
        w.put_u64(self.basic_rate_bps);
        w.put(&self.plcp);
        w.put(&self.max_prop);
        w.put_bool(self.rts_enabled);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let p = MacParams {
            slot: r.get()?,
            sifs: r.get()?,
            cw_min: r.take_u32()?,
            cw_max: r.take_u32()?,
            short_retry_limit: r.take_u32()?,
            long_retry_limit: r.take_u32()?,
            data_rate_bps: r.take_u64()?,
            basic_rate_bps: r.take_u64()?,
            plcp: r.get()?,
            max_prop: r.get()?,
            rts_enabled: r.take_bool()?,
        };
        // Mirror `validate()` as total checks: a snapshot must never panic.
        if p.data_rate_bps == 0
            || p.basic_rate_bps == 0
            || p.cw_min == 0
            || p.cw_min > p.cw_max
            || p.short_retry_limit == 0
            || p.long_retry_limit == 0
        {
            return Err(sim_core::SnapError::Invalid("mac params"));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing() {
        let p = MacParams::default();
        p.validate();
        assert_eq!(p.difs().as_micros(), 50);
        // ACK: 14 B at 1 Mbps = 112 us + 192 us PLCP = 304 us.
        assert_eq!(p.ack_airtime().as_micros(), 304);
        assert_eq!(p.eifs().as_micros(), 10 + 50 + 304);
    }

    #[test]
    fn airtimes() {
        let p = MacParams::default();
        assert_eq!(p.rts_airtime().as_micros(), 192 + 160);
        assert_eq!(p.cts_airtime().as_micros(), 192 + 112);
        // 1534-byte data frame at 2 Mbps.
        assert_eq!(p.data_airtime(1534).as_micros(), 192 + 6136);
    }

    #[test]
    fn timeouts_cover_response() {
        let p = MacParams::default();
        assert!(p.cts_timeout() > p.sifs + p.cts_airtime());
        assert!(p.ack_timeout() > p.sifs + p.ack_airtime());
    }

    #[test]
    #[should_panic(expected = "invalid contention window")]
    fn bad_cw_rejected() {
        let p = MacParams { cw_min: 64, cw_max: 32, ..MacParams::default() };
        p.validate();
    }
}
