//! The DCF medium-access state machine.

use sim_core::{SimDuration, SimRng, SimTime, SmallVec, TimerHandle, TimerSlab};
use wire::{FrameBody, FrameKind, MacFrame, NodeId, Packet, SharedPacket};

use crate::MacParams;

/// Output batch returned by the MAC's event handlers. Usually 0–3 entries,
/// so the inline representation avoids a heap allocation per handler call.
pub type MacOutputs = SmallVec<MacOutput, 4>;

/// A snapshot of physical carrier sense, supplied by the driver on every
/// call (the MAC never talks to the PHY directly).
#[derive(Clone, Copy, Debug)]
pub struct MediumView {
    /// Whether physical carrier sense reports the medium busy right now.
    pub busy: bool,
}

impl MediumView {
    /// An idle medium (convenience for tests).
    pub fn idle() -> Self {
        MediumView { busy: false }
    }

    /// A busy medium (convenience for tests).
    pub fn busy() -> Self {
        MediumView { busy: true }
    }
}

/// Identifies one timer set by the MAC. The driver schedules an event at the
/// requested time and calls [`Mac::on_timer`] with the id; stale ids are
/// ignored by the MAC, and the driver can skip the call entirely by checking
/// [`Mac::timer_is_live`] first (the generation-checked tombstone from
/// `sim_core`'s [`TimerSlab`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(TimerHandle);

/// Actions the driver must execute on the MAC's behalf.
#[derive(Clone, Debug)]
pub enum MacOutput {
    /// Put `frame` on the air now. The driver must mark the PHY as
    /// transmitting for `airtime`, schedule receptions at neighbours, and
    /// call [`Mac::on_tx_done`] when the airtime elapses.
    Transmit {
        /// The frame to transmit.
        frame: MacFrame,
        /// Its airtime (PLCP + serialisation).
        airtime: SimDuration,
    },
    /// Call [`Mac::on_timer`] with `id` at time `at`.
    SetTimer {
        /// Timer identity to echo back.
        id: TimerId,
        /// Absolute virtual firing time.
        at: SimTime,
    },
    /// A packet addressed to this node (or broadcast) arrived intact —
    /// deliver it to the upper layer. `from` is the transmitting neighbour
    /// (the previous hop), which routing needs for reverse-route learning.
    Deliver {
        /// The received packet.
        packet: Packet,
        /// The neighbour that transmitted it.
        from: NodeId,
    },
    /// The current unicast packet was acknowledged by the next hop.
    TxSuccess {
        /// The delivered packet.
        packet: Packet,
        /// The hop that acknowledged it.
        next_hop: NodeId,
    },
    /// The retry limit was exceeded — the link to `next_hop` is considered
    /// broken. Routing should react (AODV link-failure handling).
    TxFailed {
        /// The undeliverable packet.
        packet: Packet,
        /// The unreachable hop.
        next_hop: NodeId,
    },
    /// The MAC finished its current packet (success or failure) and can
    /// accept another via [`Mac::start_packet`].
    ReadyForNext,
    /// The DCF armed its contention countdown. Purely informational (the
    /// matching `SetTimer` drives the behaviour): reports the backoff slots
    /// in force — freshly drawn from `cw`, or carried over from a frozen
    /// countdown — so observers can trace contention. Not emitted for
    /// zero-slot (pure IFS) waits.
    Backoff {
        /// Backoff slots ahead of the transmission attempt.
        slots: u32,
        /// Contention window the draw was (or would have been) taken from.
        cw: u32,
    },
}

/// Counters exposed for diagnostics, DRAI utilisation input, and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Unicast data frames successfully acknowledged.
    pub data_delivered: u64,
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// DATA frames transmitted (including broadcast and retries).
    pub data_sent: u64,
    /// Attempts that ended in CTS timeout.
    pub cts_timeouts: u64,
    /// Attempts that ended in ACK timeout.
    pub ack_timeouts: u64,
    /// Packets dropped after exhausting a retry limit.
    pub drops: u64,
    /// Corrupted receptions observed (collisions at this node).
    pub rx_collisions: u64,
}

#[derive(Clone, Debug)]
struct Outgoing {
    /// Shared so each retry's DATA frame is an `Rc` clone, not a deep copy.
    packet: SharedPacket,
    next_hop: NodeId,
    short_retries: u32,
    long_retries: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// No packet under transmission.
    NoPacket,
    /// Have a packet; waiting for the medium to go idle. `carried_slots` is
    /// the frozen remainder of an interrupted backoff countdown.
    Defer,
    /// Countdown armed: timer fires at IFS + slots × slot after `started`.
    Count,
    /// Our RTS is on the air.
    TxRts,
    /// Our DATA is on the air.
    TxData,
    /// RTS sent; waiting for CTS.
    WaitCts,
    /// DATA sent; waiting for MAC ACK.
    WaitAck,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ResponseKind {
    /// CTS answering an RTS from `peer`; NAV field copied from the RTS.
    Cts { peer: NodeId, nav_until: SimTime },
    /// MAC ACK answering a DATA from `peer`.
    Ack { peer: NodeId },
    /// Our own DATA, released SIFS after receiving CTS.
    AttemptData,
}

#[derive(Clone, Copy, Debug)]
struct Countdown {
    started: SimTime,
    ifs: SimDuration,
    slots: u32,
}

/// The per-node 802.11 DCF MAC entity.
///
/// Drive it with `on_*` calls and execute the [`MacOutput`] actions it
/// returns. See the crate docs for the full contract.
#[derive(Debug)]
pub struct Mac {
    params: MacParams,
    addr: NodeId,
    rng: SimRng,

    phase: Phase,
    current: Option<Outgoing>,
    countdown: Option<Countdown>,
    carried_slots: Option<u32>,
    cw: u32,
    needs_backoff: bool,
    use_eifs: bool,

    nav_until: SimTime,

    response: Option<ResponseKind>,
    transmitting: Option<TxKind>,

    timers: TimerSlab,
    attempt_timer: Option<TimerId>,
    response_timer: Option<TimerId>,
    wait_timer: Option<TimerId>,
    nav_timer: Option<TimerId>,
    nav_reset_timer: Option<TimerId>,
    nav_reset_armed_at: SimTime,
    last_busy: Option<SimTime>,

    /// Last delivered packet uid per transmitter, for duplicate filtering
    /// when our MAC ACK was lost and the peer retransmitted.
    rx_dedup: sim_core::DetMap<NodeId, u64>,

    stats: MacStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxKind {
    AttemptRts,
    AttemptData,
    Response(FrameKind),
}

impl sim_core::Snapshotable for TimerId {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.0);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(TimerId(r.get()?))
    }
}

impl sim_core::Snapshotable for MacStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.data_delivered);
        w.put_u64(self.rts_sent);
        w.put_u64(self.data_sent);
        w.put_u64(self.cts_timeouts);
        w.put_u64(self.ack_timeouts);
        w.put_u64(self.drops);
        w.put_u64(self.rx_collisions);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(MacStats {
            data_delivered: r.take_u64()?,
            rts_sent: r.take_u64()?,
            data_sent: r.take_u64()?,
            cts_timeouts: r.take_u64()?,
            ack_timeouts: r.take_u64()?,
            drops: r.take_u64()?,
            rx_collisions: r.take_u64()?,
        })
    }
}

impl sim_core::Snapshotable for Outgoing {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.packet);
        w.put(&self.next_hop);
        w.put_u32(self.short_retries);
        w.put_u32(self.long_retries);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Outgoing {
            packet: r.get()?,
            next_hop: r.get()?,
            short_retries: r.take_u32()?,
            long_retries: r.take_u32()?,
        })
    }
}

impl sim_core::Snapshotable for Phase {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self {
            Phase::NoPacket => 0,
            Phase::Defer => 1,
            Phase::Count => 2,
            Phase::TxRts => 3,
            Phase::TxData => 4,
            Phase::WaitCts => 5,
            Phase::WaitAck => 6,
        });
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(match r.take_u8()? {
            0 => Phase::NoPacket,
            1 => Phase::Defer,
            2 => Phase::Count,
            3 => Phase::TxRts,
            4 => Phase::TxData,
            5 => Phase::WaitCts,
            6 => Phase::WaitAck,
            _ => return Err(sim_core::SnapError::Invalid("mac phase tag")),
        })
    }
}

impl sim_core::Snapshotable for ResponseKind {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        match self {
            ResponseKind::Cts { peer, nav_until } => {
                w.put_u8(0);
                w.put(peer);
                w.put(nav_until);
            }
            ResponseKind::Ack { peer } => {
                w.put_u8(1);
                w.put(peer);
            }
            ResponseKind::AttemptData => w.put_u8(2),
        }
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(match r.take_u8()? {
            0 => ResponseKind::Cts { peer: r.get()?, nav_until: r.get()? },
            1 => ResponseKind::Ack { peer: r.get()? },
            2 => ResponseKind::AttemptData,
            _ => return Err(sim_core::SnapError::Invalid("mac response tag")),
        })
    }
}

impl sim_core::Snapshotable for Countdown {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.started);
        w.put(&self.ifs);
        w.put_u32(self.slots);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Countdown { started: r.get()?, ifs: r.get()?, slots: r.take_u32()? })
    }
}

impl sim_core::Snapshotable for TxKind {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        match self {
            TxKind::AttemptRts => w.put_u8(0),
            TxKind::AttemptData => w.put_u8(1),
            TxKind::Response(kind) => {
                w.put_u8(2);
                w.put(kind);
            }
        }
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(match r.take_u8()? {
            0 => TxKind::AttemptRts,
            1 => TxKind::AttemptData,
            2 => TxKind::Response(r.get()?),
            _ => return Err(sim_core::SnapError::Invalid("mac tx kind tag")),
        })
    }
}

impl Mac {
    /// Creates a MAC entity for station `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent.
    pub fn new(addr: NodeId, params: MacParams, rng: SimRng) -> Self {
        params.validate();
        Mac {
            cw: params.cw_min,
            params,
            addr,
            rng,
            phase: Phase::NoPacket,
            current: None,
            countdown: None,
            carried_slots: None,
            needs_backoff: false,
            use_eifs: false,
            nav_until: SimTime::ZERO,
            response: None,
            transmitting: None,
            timers: TimerSlab::new(),
            attempt_timer: None,
            response_timer: None,
            wait_timer: None,
            nav_timer: None,
            nav_reset_timer: None,
            nav_reset_armed_at: SimTime::ZERO,
            last_busy: None,
            rx_dedup: sim_core::DetMap::new(),
            stats: MacStats::default(),
        }
    }

    /// Whether the MAC can accept a new packet via [`Mac::start_packet`].
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// This station's address.
    pub fn addr(&self) -> NodeId {
        self.addr
    }

    /// The current contention window (invariant checking / diagnostics).
    pub fn current_cw(&self) -> u32 {
        self.cw
    }

    /// Whether a timer id set via [`MacOutput::SetTimer`] has been neither
    /// cancelled nor fired. The driver consults this at its dispatch choke
    /// point to discard stale timer pops without entering the MAC.
    pub fn timer_is_live(&self, id: TimerId) -> bool {
        self.timers.is_live(id.0)
    }

    /// Number of timers cancelled before firing (lazy tombstones whose
    /// queued events will pop stale).
    pub fn timers_cancelled(&self) -> u64 {
        self.timers.cancelled_count()
    }

    /// How far the NAV reservation reaches beyond `now` (zero when the
    /// virtual carrier sense is clear).
    pub fn nav_ahead(&self, now: SimTime) -> SimDuration {
        if self.nav_until > now {
            self.nav_until - now
        } else {
            SimDuration::ZERO
        }
    }

    /// Fault hook: hard-resets the transmit path, as when the station loses
    /// power mid-exchange. Any packet in custody is returned to the caller
    /// for accounting. Counters and the receive-side duplicate filter
    /// survive, so a revived station keeps rejecting retransmissions it
    /// already delivered; pending timers become stale ids, which
    /// [`Mac::on_timer`] already ignores.
    pub fn abort(&mut self) -> Option<Packet> {
        let packet = self.current.take().map(|c| c.packet.into_owned());
        self.phase = Phase::NoPacket;
        self.countdown = None;
        self.carried_slots = None;
        self.cw = self.params.cw_min;
        self.needs_backoff = false;
        self.use_eifs = false;
        self.nav_until = SimTime::ZERO;
        self.response = None;
        self.transmitting = None;
        self.cancel_attempt_timer();
        self.cancel_response_timer();
        self.cancel_wait_timer();
        self.cancel_nav_timer();
        self.cancel_nav_reset_timer();
        self.nav_reset_armed_at = SimTime::ZERO;
        self.last_busy = None;
        packet
    }

    /// Serialises the MAC's full state: DCF phase, packet in custody,
    /// countdown/backoff state, NAV, pending response, timer slab, the
    /// private RNG and counters.
    pub fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.params);
        w.put(&self.addr);
        w.put(&self.rng);
        w.put(&self.phase);
        w.put(&self.current);
        w.put(&self.countdown);
        w.put(&self.carried_slots);
        w.put_u32(self.cw);
        w.put_bool(self.needs_backoff);
        w.put_bool(self.use_eifs);
        w.put(&self.nav_until);
        w.put(&self.response);
        w.put(&self.transmitting);
        w.put(&self.timers);
        w.put(&self.attempt_timer);
        w.put(&self.response_timer);
        w.put(&self.wait_timer);
        w.put(&self.nav_timer);
        w.put(&self.nav_reset_timer);
        w.put(&self.nav_reset_armed_at);
        w.put(&self.last_busy);
        w.put(&self.rx_dedup);
        w.put(&self.stats);
    }

    /// Rebuilds a MAC from bytes written by [`Self::encode_state`].
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`] on truncated or out-of-domain input.
    pub fn decode_state(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Mac {
            params: r.get()?,
            addr: r.get()?,
            rng: r.get()?,
            phase: r.get()?,
            current: r.get()?,
            countdown: r.get()?,
            carried_slots: r.get()?,
            cw: r.take_u32()?,
            needs_backoff: r.take_bool()?,
            use_eifs: r.take_bool()?,
            nav_until: r.get()?,
            response: r.get()?,
            transmitting: r.get()?,
            timers: r.get()?,
            attempt_timer: r.get()?,
            response_timer: r.get()?,
            wait_timer: r.get()?,
            nav_timer: r.get()?,
            nav_reset_timer: r.get()?,
            nav_reset_armed_at: r.get()?,
            last_busy: r.get()?,
            rx_dedup: r.get()?,
            stats: r.get()?,
        })
    }

    /// Hands the MAC its next packet to transmit toward `next_hop`
    /// (`NodeId::BROADCAST` next hop for flooded packets).
    ///
    /// # Panics
    ///
    /// Panics if the MAC already holds a packet; check [`Mac::is_idle`].
    pub fn start_packet(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
        medium: MediumView,
    ) -> MacOutputs {
        assert!(self.current.is_none(), "MAC already busy with a packet");
        self.current = Some(Outgoing {
            packet: SharedPacket::new(packet),
            next_hop,
            short_retries: 0,
            long_retries: 0,
        });
        self.phase = Phase::Defer;
        self.carried_slots = None;
        let mut out = MacOutputs::new();
        self.try_start_countdown(now, medium, &mut out);
        out
    }

    /// The driver reports that an external signal started impinging on this
    /// node (physical carrier became busy).
    pub fn on_medium_busy(&mut self, now: SimTime) {
        self.last_busy = Some(now);
        self.freeze_countdown(now);
    }

    /// The driver reports that the medium may have gone idle (a reception or
    /// transmission ended). The MAC re-evaluates whether to resume its
    /// backoff countdown.
    pub fn on_medium_maybe_idle(&mut self, now: SimTime, medium: MediumView) -> MacOutputs {
        let mut out = MacOutputs::new();
        self.try_start_countdown(now, medium, &mut out);
        out
    }

    /// A frame was decoded at this node's PHY.
    pub fn on_frame_decoded(
        &mut self,
        frame: MacFrame,
        now: SimTime,
        medium: MediumView,
    ) -> MacOutputs {
        let mut out = MacOutputs::new();
        // A correct reception ends any EIFS obligation.
        self.use_eifs = false;
        let for_me = frame.addressed_to(self.addr);
        if !for_me {
            let was_rts = frame.kind() == FrameKind::Rts;
            self.observe_nav(frame.nav_until_nanos, now, &mut out);
            if was_rts && self.nav_until > now {
                // 802.11 NAV-reset rule: an RTS-established NAV is released
                // if the granted exchange never starts (no carrier within
                // 2·SIFS + CTS airtime + 2 slots of the RTS ending).
                let wait = self.params.sifs * 2 + self.params.cts_airtime() + self.params.slot * 2;
                self.arm_nav_reset(now, wait, &mut out);
            }
            self.try_start_countdown(now, medium, &mut out);
            return out;
        }
        match frame.kind() {
            FrameKind::Rts => self.handle_rts(frame, now, &mut out),
            FrameKind::Cts => self.handle_cts(frame, now, &mut out),
            FrameKind::Data => self.handle_data(frame, now, &mut out),
            FrameKind::Ack => self.handle_ack(now, &mut out),
        }
        self.try_start_countdown(now, medium, &mut out);
        out
    }

    /// A corrupted (collided or undecodable) reception ended at this node.
    /// Triggers the EIFS rule.
    pub fn on_rx_corrupted(&mut self, _now: SimTime) {
        self.stats.rx_collisions += 1;
        self.use_eifs = true;
    }

    /// A timer set via [`MacOutput::SetTimer`] fired.
    pub fn on_timer(&mut self, id: TimerId, now: SimTime, medium: MediumView) -> MacOutputs {
        let mut out = MacOutputs::new();
        if !self.timers.fire(id.0) {
            // Cancelled (or already consumed): a lazy tombstone popping.
            return out;
        }
        if self.attempt_timer == Some(id) {
            self.attempt_timer = None;
            self.fire_attempt(now, medium, &mut out);
        } else if self.response_timer == Some(id) {
            self.response_timer = None;
            self.fire_response(now, &mut out);
        } else if self.wait_timer == Some(id) {
            self.wait_timer = None;
            self.fire_wait_timeout(now, medium, &mut out);
        } else if self.nav_timer == Some(id) {
            self.nav_timer = None;
            self.try_start_countdown(now, medium, &mut out);
        } else if self.nav_reset_timer == Some(id) {
            self.nav_reset_timer = None;
            let heard_since = self.last_busy.is_some_and(|t| t >= self.nav_reset_armed_at);
            if !heard_since && self.nav_until > now {
                // Nothing hit the air since the reservation: release it.
                self.nav_until = now;
                self.try_start_countdown(now, medium, &mut out);
            }
        }
        out
    }

    /// Our transmission (started via [`MacOutput::Transmit`]) left the air.
    pub fn on_tx_done(&mut self, now: SimTime, medium: MediumView) -> MacOutputs {
        let mut out = MacOutputs::new();
        let kind = self.transmitting.take().expect("tx done without transmission");
        match kind {
            TxKind::AttemptRts => {
                debug_assert_eq!(self.phase, Phase::TxRts);
                self.phase = Phase::WaitCts;
                let id = self.alloc_timer();
                self.wait_timer = Some(id);
                out.push(MacOutput::SetTimer { id, at: now + self.params.cts_timeout() });
            }
            TxKind::AttemptData => {
                debug_assert_eq!(self.phase, Phase::TxData);
                let broadcast =
                    self.current.as_ref().map(|c| c.next_hop.is_broadcast()).unwrap_or(false);
                if broadcast {
                    self.finish_success(now, &mut out);
                } else {
                    self.phase = Phase::WaitAck;
                    let id = self.alloc_timer();
                    self.wait_timer = Some(id);
                    out.push(MacOutput::SetTimer { id, at: now + self.params.ack_timeout() });
                }
            }
            TxKind::Response(kind) => {
                if kind == FrameKind::Cts {
                    // We granted the medium; if the peer's DATA never
                    // starts, release our self-imposed deferral instead of
                    // staying deaf for the whole reserved exchange.
                    let wait = self.params.sifs + self.params.slot * 2 + self.params.max_prop * 2;
                    self.arm_nav_reset(now, wait, &mut out);
                }
            }
        }
        self.try_start_countdown(now, medium, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Receive-side handlers
    // ------------------------------------------------------------------

    fn handle_rts(&mut self, frame: MacFrame, now: SimTime, out: &mut MacOutputs) {
        // Respond with CTS only if our virtual carrier sense is idle and we
        // are not mid-transmission or already committed to a response.
        let available = self.nav_until <= now
            && self.transmitting.is_none()
            && self.response.is_none()
            && !matches!(self.phase, Phase::TxRts | Phase::TxData);
        if available {
            self.schedule_response(
                ResponseKind::Cts {
                    peer: frame.src,
                    nav_until: SimTime::from_nanos(frame.nav_until_nanos),
                },
                now,
                out,
            );
        }
    }

    fn handle_cts(&mut self, _frame: MacFrame, now: SimTime, out: &mut MacOutputs) {
        if self.phase == Phase::WaitCts {
            self.cancel_wait_timer();
            // Reset the short retry count: the RTS got through.
            if let Some(c) = self.current.as_mut() {
                c.short_retries = 0;
            }
            self.schedule_response(ResponseKind::AttemptData, now, out);
            // Phase stays WaitCts until the DATA actually launches.
        }
    }

    fn handle_data(&mut self, frame: MacFrame, now: SimTime, out: &mut MacOutputs) {
        let src = frame.src;
        let unicast = !frame.dst.is_broadcast();
        let seq_key = frame.packet().map(|p| p.uid).unwrap_or(0);
        if unicast && self.transmitting.is_none() && self.response.is_none() {
            self.schedule_response(ResponseKind::Ack { peer: src }, now, out);
        }
        // Deliver unless we've already delivered this exact frame (ACK was
        // lost and the sender retried).
        let dup = self.rx_dedup.get(&src) == Some(&seq_key);
        if !dup {
            self.rx_dedup.insert(src, seq_key);
            if let Some(packet) = frame.into_packet() {
                self.stats.data_delivered += 1;
                out.push(MacOutput::Deliver { packet, from: src });
            }
        }
    }

    fn handle_ack(&mut self, now: SimTime, out: &mut MacOutputs) {
        if self.phase == Phase::WaitAck {
            self.cancel_wait_timer();
            self.finish_success(now, out);
        }
    }

    // ------------------------------------------------------------------
    // Attempt path
    // ------------------------------------------------------------------

    fn try_start_countdown(&mut self, now: SimTime, medium: MediumView, out: &mut MacOutputs) {
        if self.phase != Phase::Defer || self.current.is_none() {
            return;
        }
        if medium.busy || self.transmitting.is_some() || self.response.is_some() {
            // Stay deferred; the driver pings us again at the next idle edge.
            return;
        }
        if self.nav_until > now {
            // Virtually busy: wake up exactly at NAV expiry.
            if self.nav_timer.is_none() {
                let id = self.alloc_timer();
                self.nav_timer = Some(id);
                out.push(MacOutput::SetTimer { id, at: self.nav_until });
            }
            return;
        }
        let slots = match self.carried_slots.take() {
            Some(s) => s,
            None if self.needs_backoff => self.rng.backoff_slot(self.cw),
            None => 0,
        };
        let ifs = if self.use_eifs { self.params.eifs() } else { self.params.difs() };
        let fire = now + ifs + self.params.slot * u64::from(slots);
        self.countdown = Some(Countdown { started: now, ifs, slots });
        let id = self.alloc_timer();
        self.attempt_timer = Some(id);
        self.phase = Phase::Count;
        if slots > 0 {
            out.push(MacOutput::Backoff { slots, cw: self.cw });
        }
        out.push(MacOutput::SetTimer { id, at: fire });
    }

    fn freeze_countdown(&mut self, now: SimTime) {
        if self.phase != Phase::Count {
            return;
        }
        let cd = self.countdown.take().expect("counting without countdown");
        let elapsed = now.saturating_since(cd.started);
        let remaining = if elapsed <= cd.ifs {
            cd.slots
        } else {
            let consumed = (elapsed - cd.ifs).as_nanos() / self.params.slot.as_nanos().max(1);
            cd.slots.saturating_sub(consumed as u32)
        };
        self.carried_slots = Some(remaining);
        self.cancel_attempt_timer(); // tombstone the pending timer
        self.needs_backoff = true; // deferral always implies backoff
        self.phase = Phase::Defer;
    }

    fn fire_attempt(&mut self, now: SimTime, medium: MediumView, out: &mut MacOutputs) {
        if self.phase != Phase::Count {
            return; // stale
        }
        if medium.busy || self.nav_until > now || self.transmitting.is_some() {
            // Lost the race with a late-arriving signal: refreeze.
            self.freeze_countdown(now);
            self.try_start_countdown(now, medium, out);
            return;
        }
        self.countdown = None;
        // Backoff consumed; the next attempt draws afresh.
        let current = self.current.as_ref().expect("attempt without packet");
        let broadcast = current.next_hop.is_broadcast();
        if broadcast || !self.params.rts_enabled {
            self.transmit_attempt_data(now, out);
        } else {
            self.transmit_rts(now, out);
        }
    }

    fn transmit_rts(&mut self, now: SimTime, out: &mut MacOutputs) {
        let (dst, data_bytes) = {
            let c = self.current.as_ref().expect("no packet");
            (c.next_hop, c.packet.size_bytes() + wire::DATA_OVERHEAD_BYTES)
        };
        let p = &self.params;
        let rts_end = now + p.rts_airtime();
        let nav_until = rts_end
            + p.sifs
            + p.cts_airtime()
            + p.sifs
            + p.data_airtime(data_bytes)
            + p.sifs
            + p.ack_airtime()
            + p.max_prop * 4;
        let frame = MacFrame {
            src: self.addr,
            dst,
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: nav_until.as_nanos(),
        };
        self.stats.rts_sent += 1;
        self.phase = Phase::TxRts;
        self.transmitting = Some(TxKind::AttemptRts);
        let airtime = p.rts_airtime();
        out.push(MacOutput::Transmit { frame, airtime });
    }

    fn transmit_attempt_data(&mut self, now: SimTime, out: &mut MacOutputs) {
        let (dst, packet) = {
            let c = self.current.as_ref().expect("no packet");
            // An `Rc` clone: every retry's frame shares the one allocation.
            (c.next_hop, c.packet.clone())
        };
        let p = &self.params;
        let frame_bytes = packet.size_bytes() + wire::DATA_OVERHEAD_BYTES;
        let data_end = now + p.data_airtime(frame_bytes);
        let nav_until = if dst.is_broadcast() {
            SimTime::ZERO
        } else {
            data_end + p.sifs + p.ack_airtime() + p.max_prop * 2
        };
        let frame = MacFrame {
            src: self.addr,
            dst,
            body: FrameBody::Data(packet),
            nav_until_nanos: nav_until.as_nanos(),
        };
        self.stats.data_sent += 1;
        self.phase = Phase::TxData;
        self.transmitting = Some(TxKind::AttemptData);
        let airtime = p.data_airtime(frame_bytes);
        out.push(MacOutput::Transmit { frame, airtime });
    }

    fn fire_wait_timeout(&mut self, now: SimTime, medium: MediumView, out: &mut MacOutputs) {
        match self.phase {
            Phase::WaitCts => {
                self.stats.cts_timeouts += 1;
                let limit_hit = {
                    let c = self.current.as_mut().expect("waiting without packet");
                    c.short_retries += 1;
                    c.short_retries >= self.params.short_retry_limit
                };
                if limit_hit {
                    self.finish_failure(now, out);
                } else {
                    self.retry(now, medium, out);
                }
            }
            Phase::WaitAck => {
                self.stats.ack_timeouts += 1;
                let limit_hit = {
                    let c = self.current.as_mut().expect("waiting without packet");
                    c.long_retries += 1;
                    c.long_retries >= self.params.long_retry_limit
                };
                if limit_hit {
                    self.finish_failure(now, out);
                } else {
                    self.retry(now, medium, out);
                }
            }
            _ => {} // stale
        }
    }

    fn retry(&mut self, now: SimTime, medium: MediumView, out: &mut MacOutputs) {
        self.cw = (self.cw * 2 + 1).min(self.params.cw_max);
        self.needs_backoff = true;
        self.carried_slots = None;
        self.phase = Phase::Defer;
        self.try_start_countdown(now, medium, out);
    }

    fn finish_success(&mut self, _now: SimTime, out: &mut MacOutputs) {
        let c = self.current.take().expect("success without packet");
        self.cw = self.params.cw_min;
        self.needs_backoff = true; // post-transmission backoff
        self.phase = Phase::NoPacket;
        self.carried_slots = None;
        if !c.next_hop.is_broadcast() {
            out.push(MacOutput::TxSuccess { packet: c.packet.into_owned(), next_hop: c.next_hop });
        }
        out.push(MacOutput::ReadyForNext);
    }

    fn finish_failure(&mut self, _now: SimTime, out: &mut MacOutputs) {
        let c = self.current.take().expect("failure without packet");
        self.stats.drops += 1;
        self.cw = self.params.cw_min;
        self.needs_backoff = true;
        self.phase = Phase::NoPacket;
        self.carried_slots = None;
        out.push(MacOutput::TxFailed { packet: c.packet.into_owned(), next_hop: c.next_hop });
        out.push(MacOutput::ReadyForNext);
    }

    // ------------------------------------------------------------------
    // Response path (SIFS-timed CTS / ACK / post-CTS DATA)
    // ------------------------------------------------------------------

    fn schedule_response(&mut self, kind: ResponseKind, now: SimTime, out: &mut MacOutputs) {
        debug_assert!(self.response.is_none());
        // Committing to a response suspends our own countdown.
        self.freeze_countdown(now);
        self.response = Some(kind);
        let id = self.alloc_timer();
        self.response_timer = Some(id);
        out.push(MacOutput::SetTimer { id, at: now + self.params.sifs });
    }

    fn fire_response(&mut self, now: SimTime, out: &mut MacOutputs) {
        let Some(kind) = self.response.take() else { return };
        if self.transmitting.is_some() {
            // Radio unexpectedly occupied; drop the response (peer retries).
            return;
        }
        let p = &self.params;
        match kind {
            ResponseKind::Cts { peer, nav_until } => {
                let frame = MacFrame {
                    src: self.addr,
                    dst: peer,
                    body: FrameBody::Control(FrameKind::Cts),
                    nav_until_nanos: nav_until.as_nanos(),
                };
                // Defer our own attempts until the protected exchange ends.
                self.nav_until = self.nav_until.max(nav_until);
                self.transmitting = Some(TxKind::Response(FrameKind::Cts));
                let airtime = p.cts_airtime();
                out.push(MacOutput::Transmit { frame, airtime });
            }
            ResponseKind::Ack { peer } => {
                let frame = MacFrame {
                    src: self.addr,
                    dst: peer,
                    body: FrameBody::Control(FrameKind::Ack),
                    nav_until_nanos: 0,
                };
                self.transmitting = Some(TxKind::Response(FrameKind::Ack));
                let airtime = p.ack_airtime();
                out.push(MacOutput::Transmit { frame, airtime });
            }
            ResponseKind::AttemptData => {
                if self.phase == Phase::WaitCts && self.current.is_some() {
                    self.transmit_attempt_data(now, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // NAV
    // ------------------------------------------------------------------

    fn observe_nav(&mut self, nav_until_nanos: u64, now: SimTime, _out: &mut MacOutputs) {
        let until = SimTime::from_nanos(nav_until_nanos);
        if until > self.nav_until {
            self.nav_until = until;
        }
        if self.nav_until > now {
            // Virtual carrier became busy: freeze a running countdown.
            self.freeze_countdown(now);
        }
    }

    fn arm_nav_reset(&mut self, now: SimTime, wait: SimDuration, out: &mut MacOutputs) {
        // Re-arming tombstones the previous reset timer, if still pending.
        self.cancel_nav_reset_timer();
        let id = self.alloc_timer();
        self.nav_reset_timer = Some(id);
        self.nav_reset_armed_at = now;
        out.push(MacOutput::SetTimer { id, at: now + wait });
    }

    fn alloc_timer(&mut self) -> TimerId {
        TimerId(self.timers.schedule())
    }

    fn cancel_attempt_timer(&mut self) {
        if let Some(id) = self.attempt_timer.take() {
            self.timers.cancel(id.0);
        }
    }

    fn cancel_response_timer(&mut self) {
        if let Some(id) = self.response_timer.take() {
            self.timers.cancel(id.0);
        }
    }

    fn cancel_wait_timer(&mut self) {
        if let Some(id) = self.wait_timer.take() {
            self.timers.cancel(id.0);
        }
    }

    fn cancel_nav_timer(&mut self) {
        if let Some(id) = self.nav_timer.take() {
            self.timers.cancel(id.0);
        }
    }

    fn cancel_nav_reset_timer(&mut self) {
        if let Some(id) = self.nav_reset_timer.take() {
            self.timers.cancel(id.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;
    use wire::{FlowId, Payload, TcpSegment};

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn mk_mac(addr: u16) -> Mac {
        Mac::new(n(addr), MacParams::default(), SimRng::new(1))
    }

    fn data_packet(uid: u64, src: u16, dst: u16) -> Packet {
        Packet::new(
            uid,
            n(src),
            n(dst),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Extracts the single SetTimer from outputs.
    fn timer_of(out: &MacOutputs) -> (TimerId, SimTime) {
        let timers: Vec<_> = out
            .iter()
            .filter_map(|o| match o {
                MacOutput::SetTimer { id, at } => Some((*id, *at)),
                _ => None,
            })
            .collect();
        assert_eq!(timers.len(), 1, "expected exactly one timer in {out:?}");
        timers[0]
    }

    fn transmit_of(out: &MacOutputs) -> (&MacFrame, SimDuration) {
        out.iter()
            .find_map(|o| match o {
                MacOutput::Transmit { frame, airtime } => Some((frame, *airtime)),
                _ => None,
            })
            .expect("no Transmit in outputs")
    }

    #[test]
    fn abort_returns_custody_and_resets_the_transmit_path() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(42, 0, 1), n(1), t(0), MediumView::idle());
        let (id, at) = timer_of(&out);
        assert!(!mac.is_idle());
        let returned = mac.abort();
        assert_eq!(returned.map(|p| p.uid), Some(42));
        assert!(mac.is_idle());
        assert_eq!(mac.current_cw(), MacParams::default().cw_min);
        assert_eq!(mac.nav_ahead(at), SimDuration::ZERO);
        // The pre-abort timer id is stale and must be ignored.
        assert!(mac.on_timer(id, at, MediumView::idle()).is_empty());
        // The MAC accepts fresh work afterwards.
        let out = mac.start_packet(data_packet(43, 0, 1), n(1), at, MediumView::idle());
        assert!(!out.is_empty());
    }

    #[test]
    fn abort_without_custody_returns_none() {
        let mut mac = mk_mac(0);
        assert_eq!(mac.abort().map(|p| p.uid), None);
        assert!(mac.is_idle());
    }

    #[test]
    fn first_attempt_waits_difs_then_sends_rts() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let (id, at) = timer_of(&out);
        assert_eq!(at, t(50)); // DIFS, zero backoff on a fresh idle medium
        let out = mac.on_timer(id, at, MediumView::idle());
        let (frame, _) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Rts);
        assert_eq!(frame.dst, n(1));
        assert_eq!(mac.stats().rts_sent, 1);
    }

    #[test]
    fn broadcast_skips_rts_and_completes_without_ack() {
        let mut mac = mk_mac(0);
        let pkt = Packet::new(
            7,
            n(0),
            NodeId::BROADCAST,
            Payload::Tcp(TcpSegment::ack(FlowId::new(0), 0)),
        );
        let out = mac.start_packet(pkt, NodeId::BROADCAST, t(0), MediumView::idle());
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        let (frame, airtime) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Data);
        let done = at + airtime;
        let out = mac.on_tx_done(done, MediumView::idle());
        assert!(out.iter().any(|o| matches!(o, MacOutput::ReadyForNext)));
        assert!(mac.is_idle());
    }

    #[test]
    fn full_rts_cts_data_ack_exchange() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        let (_, rts_air) = transmit_of(&out);
        let rts_done = at + rts_air;
        // RTS leaves the air; MAC arms CTS timeout.
        let out = mac.on_tx_done(rts_done, MediumView::idle());
        let (_cts_to, _) = timer_of(&out);
        // CTS arrives.
        let cts = MacFrame {
            src: n(1),
            dst: n(0),
            body: FrameBody::Control(FrameKind::Cts),
            nav_until_nanos: 0,
        };
        let cts_rx = rts_done + SimDuration::from_micros(400);
        let out = mac.on_frame_decoded(cts, cts_rx, MediumView::idle());
        let (sifs_id, sifs_at) = timer_of(&out);
        assert_eq!(sifs_at, cts_rx + SimDuration::from_micros(10));
        // SIFS elapses; DATA goes out.
        let out = mac.on_timer(sifs_id, sifs_at, MediumView::idle());
        let (frame, data_air) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Data);
        let data_done = sifs_at + data_air;
        let out = mac.on_tx_done(data_done, MediumView::idle());
        let _ack_timeout = timer_of(&out);
        // MAC ACK arrives.
        let ack = MacFrame {
            src: n(1),
            dst: n(0),
            body: FrameBody::Control(FrameKind::Ack),
            nav_until_nanos: 0,
        };
        let out = mac.on_frame_decoded(
            ack,
            data_done + SimDuration::from_micros(320),
            MediumView::idle(),
        );
        assert!(out.iter().any(|o| matches!(o, MacOutput::TxSuccess { .. })));
        assert!(out.iter().any(|o| matches!(o, MacOutput::ReadyForNext)));
        assert!(mac.is_idle());
    }

    #[test]
    fn cts_timeout_retries_then_fails_at_limit() {
        let mut mac = mk_mac(0);
        let mut now = t(0);
        let mut out = mac.start_packet(data_packet(1, 0, 1), n(1), now, MediumView::idle());
        let mut failed = false;
        for _round in 0..MacParams::default().short_retry_limit {
            let (id, at) = timer_of(&out);
            now = at;
            out = mac.on_timer(id, now, MediumView::idle());
            let tx = out.iter().find_map(|o| match o {
                MacOutput::Transmit { frame, airtime } => Some((frame.clone(), *airtime)),
                _ => None,
            });
            if let Some((frame, air)) = tx {
                assert_eq!(frame.kind(), FrameKind::Rts);
                now += air;
                out = mac.on_tx_done(now, MediumView::idle());
                // Let the CTS timeout fire.
                let (to_id, to_at) = timer_of(&out);
                now = to_at;
                out = mac.on_timer(to_id, now, MediumView::idle());
                if out.iter().any(|o| matches!(o, MacOutput::TxFailed { .. })) {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "should give up after short retry limit");
        assert_eq!(mac.stats().drops, 1);
        assert!(mac.is_idle());
    }

    #[test]
    fn receiving_rts_schedules_cts_after_sifs() {
        let mut mac = mk_mac(1);
        let rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(10_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(rts, t(100), MediumView::idle());
        let (id, at) = timer_of(&out);
        assert_eq!(at, t(110));
        let out = mac.on_timer(id, at, MediumView::idle());
        let (frame, _) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Cts);
        assert_eq!(frame.dst, n(0));
        // CTS copies the RTS NAV end.
        assert_eq!(frame.nav_until_nanos, t(10_000).as_nanos());
    }

    #[test]
    fn rts_ignored_while_nav_busy() {
        let mut mac = mk_mac(1);
        // Overheard CTS sets NAV.
        let foreign_cts = MacFrame {
            src: n(5),
            dst: n(6),
            body: FrameBody::Control(FrameKind::Cts),
            nav_until_nanos: t(50_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(foreign_cts, t(0), MediumView::idle());
        assert!(out.is_empty());
        // RTS for us arrives during the NAV: no CTS response.
        let rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(60_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(rts, t(1_000), MediumView::idle());
        assert!(out.is_empty(), "must not respond during NAV: {out:?}");
    }

    #[test]
    fn receiving_data_delivers_and_acks() {
        let mut mac = mk_mac(1);
        let frame = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Data(SharedPacket::new(data_packet(9, 0, 1))),
            nav_until_nanos: 0,
        };
        let out = mac.on_frame_decoded(frame, t(0), MediumView::idle());
        assert!(out.iter().any(
            |o| matches!(o, MacOutput::Deliver { packet, from } if packet.uid == 9 && *from == n(0))
        ));
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        let (frame, _) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Ack);
    }

    #[test]
    fn duplicate_data_is_acked_but_not_redelivered() {
        let mut mac = mk_mac(1);
        let frame = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Data(SharedPacket::new(data_packet(9, 0, 1))),
            nav_until_nanos: 0,
        };
        let out = mac.on_frame_decoded(frame.clone(), t(0), MediumView::idle());
        assert!(out.iter().any(|o| matches!(o, MacOutput::Deliver { .. })));
        // Consume the ACK response so the response slot frees up.
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        let (_, air) = transmit_of(&out);
        let _ = mac.on_tx_done(at + air, MediumView::idle());
        // Same frame again (retransmission after a lost ACK).
        let out = mac.on_frame_decoded(frame, t(100_000), MediumView::idle());
        assert!(
            !out.iter().any(|o| matches!(o, MacOutput::Deliver { .. })),
            "duplicate must not be redelivered: {out:?}"
        );
        // But it is ACKed again.
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        assert_eq!(transmit_of(&out).0.kind(), FrameKind::Ack);
    }

    #[test]
    fn busy_medium_defers_countdown() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::busy());
        assert!(out.is_empty(), "must defer while busy: {out:?}");
        // Medium goes idle.
        let out = mac.on_medium_maybe_idle(t(1_000), MediumView::idle());
        let (_, at) = timer_of(&out);
        assert_eq!(at, t(1_050)); // DIFS after the idle edge (no prior freeze)
    }

    #[test]
    fn countdown_freezes_and_resumes_with_remaining_slots() {
        let mut mac = mk_mac(0);
        // Force a backoff draw by marking that backoff is needed.
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::busy());
        assert!(out.is_empty());
        let out = mac.on_medium_maybe_idle(t(1_000), MediumView::idle());
        let (_, fire1) = timer_of(&out);
        // Deferral happened, so a random backoff [0,31] was drawn on resume.
        let total1 = fire1 - t(1_050); // slots * 20us
                                       // Freeze partway through the countdown, after IFS + 1 slot.
        let freeze_at = t(1_050) + SimDuration::from_micros(20);
        if freeze_at < fire1 {
            mac.on_medium_busy(freeze_at);
            let out = mac.on_medium_maybe_idle(t(5_000), MediumView::idle());
            let (_, fire2) = timer_of(&out);
            let total2 = fire2 - t(5_050);
            // One slot was consumed.
            assert_eq!(total1 - total2, SimDuration::from_micros(20));
        }
    }

    #[test]
    fn nav_from_overheard_rts_defers_attempt() {
        let mut mac = mk_mac(2);
        let foreign_rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(9_000).as_nanos(),
        };
        let _ = mac.on_frame_decoded(foreign_rts, t(0), MediumView::idle());
        // New packet arrives; NAV blocks it, so the MAC arms a NAV-expiry timer.
        let out = mac.start_packet(data_packet(1, 2, 1), n(1), t(100), MediumView::idle());
        let (nav_id, nav_at) = timer_of(&out);
        assert_eq!(nav_at, t(9_000));
        // At NAV expiry the countdown starts.
        let out = mac.on_timer(nav_id, nav_at, MediumView::idle());
        let (_, at) = timer_of(&out);
        assert!(at >= t(9_000) + SimDuration::from_micros(50));
    }

    #[test]
    fn eifs_used_after_corrupted_reception() {
        let mut mac = mk_mac(0);
        mac.on_rx_corrupted(t(0));
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let (_, at) = timer_of(&out);
        // EIFS = 364 us (with zero backoff on first attempt).
        assert_eq!(at, t(364));
        assert_eq!(mac.stats().rx_collisions, 1);
    }

    #[test]
    fn correct_reception_clears_eifs() {
        let mut mac = mk_mac(0);
        mac.on_rx_corrupted(t(0));
        // Then a clean foreign frame is decoded.
        let foreign = MacFrame {
            src: n(5),
            dst: n(6),
            body: FrameBody::Control(FrameKind::Ack),
            nav_until_nanos: 0,
        };
        let _ = mac.on_frame_decoded(foreign, t(10), MediumView::idle());
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(100), MediumView::idle());
        let (_, at) = timer_of(&out);
        assert_eq!(at, t(150)); // plain DIFS again
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_packet_panics() {
        let mut mac = mk_mac(0);
        let _ = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let _ = mac.start_packet(data_packet(2, 0, 1), n(1), t(0), MediumView::idle());
    }

    #[test]
    fn stale_timer_ignored() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let (id, _) = timer_of(&out);
        assert!(mac.timer_is_live(id));
        // Medium goes busy; the pending timer is tombstoned.
        mac.on_medium_busy(t(10));
        assert!(!mac.timer_is_live(id), "cancelled timer must read as dead");
        assert_eq!(mac.timers_cancelled(), 1);
        let out = mac.on_timer(id, t(50), MediumView::idle());
        assert!(out.is_empty(), "stale timer must be ignored: {out:?}");
    }

    #[test]
    fn fired_timer_goes_dead_and_cannot_replay() {
        let mut mac = mk_mac(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), t(0), MediumView::idle());
        let (id, at) = timer_of(&out);
        let out = mac.on_timer(id, at, MediumView::idle());
        assert!(!out.is_empty());
        assert!(!mac.timer_is_live(id), "fired timer must read as dead");
        // Replaying the same id is a stale pop, not a second attempt.
        let replay = mac.on_timer(id, at, MediumView::idle());
        assert!(replay.is_empty(), "replay must be ignored: {replay:?}");
        assert_eq!(mac.timers_cancelled(), 0, "firing is not a cancellation");
    }

    #[test]
    fn retry_frames_share_the_packet_allocation() {
        let params = MacParams { rts_enabled: false, ..MacParams::default() };
        let mut mac = Mac::new(n(0), params, SimRng::new(1));
        let mut now = t(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), now, MediumView::idle());
        let (id, at) = timer_of(&out);
        now = at;
        let out = mac.on_timer(id, now, MediumView::idle());
        let (frame, air) = transmit_of(&out);
        let first = match &frame.body {
            FrameBody::Data(shared) => shared.clone(),
            other => panic!("expected DATA, got {other:?}"),
        };
        // The MAC's custody copy plus our extracted handle share one
        // allocation (ref_count counts every outstanding Rc clone).
        assert!(first.ref_count() >= 2, "custody + frame must share");
        now += air;
        let out = mac.on_tx_done(now, MediumView::idle());
        let (to_id, to_at) = timer_of(&out);
        now = to_at;
        // ACK timeout -> retry: the retry frame is another shared clone.
        let out = mac.on_timer(to_id, now, MediumView::idle());
        let out = {
            let (id2, at2) = timer_of(&out);
            mac.on_timer(id2, at2, MediumView::idle())
        };
        let (frame2, _) = transmit_of(&out);
        match &frame2.body {
            FrameBody::Data(shared) => {
                assert_eq!(shared.get().uid, 1);
                assert!(shared.ref_count() >= 2, "retry must not deep-copy");
            }
            other => panic!("expected DATA retry, got {other:?}"),
        }
    }

    #[test]
    fn nav_reset_releases_abandoned_reservation() {
        let mut mac = mk_mac(2);
        // Overheard RTS reserves the medium far into the future...
        let foreign_rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(9_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(foreign_rts, t(0), MediumView::idle());
        // ...which also arms the NAV-reset timer.
        let (reset_id, reset_at) = timer_of(&out);
        assert!(reset_at < t(9_000), "reset must fire before the NAV end");
        // A packet arrives; NAV blocks it (nav timer armed at 9 ms).
        let out = mac.start_packet(data_packet(1, 2, 1), n(1), t(100), MediumView::idle());
        let _nav_timer = timer_of(&out);
        // Nothing hits the air before the reset fires: the reservation is
        // released and the countdown starts immediately.
        let out = mac.on_timer(reset_id, reset_at, MediumView::idle());
        let (_, fire_at) = timer_of(&out);
        assert!(
            fire_at < t(9_000),
            "countdown must start at NAV reset ({fire_at:?}), not at NAV expiry"
        );
    }

    #[test]
    fn nav_reset_cancelled_when_exchange_proceeds() {
        let mut mac = mk_mac(2);
        let foreign_rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(9_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(foreign_rts, t(0), MediumView::idle());
        let (reset_id, reset_at) = timer_of(&out);
        // The granted exchange's DATA is heard before the reset deadline.
        mac.on_medium_busy(t(300));
        let out = mac.on_timer(reset_id, reset_at, MediumView::idle());
        assert!(out.is_empty(), "reset must be a no-op after carrier activity");
        // A packet must still be NAV-blocked until 9 ms.
        let out = mac.start_packet(data_packet(1, 2, 1), n(1), t(600), MediumView::idle());
        let (_, at) = timer_of(&out);
        assert_eq!(at, t(9_000), "NAV expiry timer expected");
    }

    #[test]
    fn cts_grant_released_if_data_never_comes() {
        let mut mac = mk_mac(1);
        // We answer an RTS with a CTS...
        let rts = MacFrame {
            src: n(0),
            dst: n(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: t(9_000).as_nanos(),
        };
        let out = mac.on_frame_decoded(rts, t(0), MediumView::idle());
        let (sifs_id, sifs_at) = timer_of(&out);
        let out = mac.on_timer(sifs_id, sifs_at, MediumView::idle());
        let (frame, air) = transmit_of(&out);
        assert_eq!(frame.kind(), FrameKind::Cts);
        // ...the CTS leaves the air, arming the grant-release timer.
        let out = mac.on_tx_done(sifs_at + air, MediumView::idle());
        let (release_id, release_at) = timer_of(&out);
        // The peer's DATA never arrives. After release, our own packet is
        // not NAV-blocked anymore.
        let _ = mac.on_timer(release_id, release_at, MediumView::idle());
        let out = mac.start_packet(data_packet(9, 1, 0), n(0), release_at, MediumView::idle());
        let (_, at) = timer_of(&out);
        assert!(at < t(9_000), "self-NAV must be released, got countdown at {at:?}");
    }

    #[test]
    fn cw_doubles_on_retry_and_resets_on_success() {
        let mut mac = mk_mac(0);
        let mut now = t(0);
        let out = mac.start_packet(data_packet(1, 0, 1), n(1), now, MediumView::idle());
        let (id, at) = timer_of(&out);
        now = at;
        let out = mac.on_timer(id, now, MediumView::idle());
        let (_, air) = transmit_of(&out);
        now += air;
        let out = mac.on_tx_done(now, MediumView::idle());
        let (to_id, to_at) = timer_of(&out);
        now = to_at;
        // Timeout -> retry with doubled CW (observable via a later draw; here
        // we just verify the phase machine keeps going and stats count).
        let out = mac.on_timer(to_id, now, MediumView::idle());
        assert_eq!(mac.stats().cts_timeouts, 1);
        let (_, _at2) = timer_of(&out);
        assert!(!mac.is_idle());
    }
}
